//! GPU architecture descriptors.
//!
//! A [`GpuSpec`] captures the handful of architectural parameters that the
//! paper's memory-efficiency model depends on: the shared-memory **bank
//! width** (`W_SMB`, 8 bytes on Kepler and 4 bytes on Fermi/Maxwell), the
//! number of banks, the global-memory transaction size and bandwidth, the
//! constant-memory broadcast mechanism, and the raw compute rates used by the
//! timing model.
//!
//! Presets are provided for the machines discussed in the paper
//! ([`GpuSpec::kepler_k40m`], [`GpuSpec::fermi_m2090`]) plus a Maxwell-like
//! 4-byte-bank part ([`GpuSpec::maxwell_like`]) used by the short-data-type
//! extension experiments.

/// Number of threads in a warp. Fixed at 32 on every NVIDIA architecture the
/// paper considers; the simulator hard-codes it for clarity and speed.
pub const WARP_SIZE: usize = 32;

/// Shared-memory bank width `W_SMB` in bytes.
///
/// The central quantity of the paper: when the bank width exceeds the
/// computation data width `W_CD` of a thread, the conventional
/// one-element-per-thread access pattern wastes `W_SMB / W_CD` of the
/// available shared-memory bandwidth.
///
/// # Examples
///
/// ```
/// use kconv_sim::BankWidth;
/// assert_eq!(BankWidth::B8.bytes(), 8);
/// assert_eq!(BankWidth::B8.mismatch_factor(4), 2); // float on Kepler
/// assert_eq!(BankWidth::B4.mismatch_factor(4), 1); // float on Fermi
/// assert_eq!(BankWidth::B4.mismatch_factor(2), 2); // fp16 on Fermi/Maxwell
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BankWidth {
    /// 4-byte banks (Fermi, Maxwell, Pascal, ...).
    B4,
    /// 8-byte banks (Kepler).
    B8,
}

impl BankWidth {
    /// Bank width in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            BankWidth::B4 => 4,
            BankWidth::B8 => 8,
        }
    }

    /// The paper's mismatch factor `n = W_SMB / W_CD` (eq. 1) for a thread
    /// computing on scalars of `data_width` bytes. A factor of 1 means the
    /// bank width and the computation data width are matched; a factor of
    /// `n > 1` means a conventional kernel loses `1/n` of the shared-memory
    /// bandwidth and should instead access `n` elements per thread as one
    /// unit.
    ///
    /// # Panics
    ///
    /// Panics if `data_width` is zero or larger than the bank width.
    pub fn mismatch_factor(self, data_width: u64) -> u64 {
        assert!(
            data_width > 0 && data_width <= self.bytes(),
            "data width {data_width} must be in 1..={}",
            self.bytes()
        );
        self.bytes() / data_width
    }
}

impl std::fmt::Display for BankWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}B banks", self.bytes())
    }
}

/// Architectural description of a simulated GPU.
///
/// All fields are public so that experiment harnesses can build hypothetical
/// parts (e.g. "Kepler with 4-byte banks") for ablations; use the preset
/// constructors for the real machines.
///
/// # Examples
///
/// ```
/// use kconv_sim::GpuSpec;
/// let k40 = GpuSpec::kepler_k40m();
/// // The paper quotes 4290 single-precision GFlop/s for the K40m.
/// assert!((k40.peak_gflops() - 4290.0).abs() < 10.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Human-readable name, e.g. `"Kepler K40m"`.
    pub name: &'static str,
    /// Number of streaming multiprocessors (SMX on Kepler).
    pub sm_count: u32,
    /// FMA-capable cores per SM (lanes retired per cycle).
    pub cores_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Number of shared-memory banks (32 on all parts modeled here).
    pub smem_banks: u32,
    /// Shared-memory bank width.
    pub bank_width: BankWidth,
    /// Shared memory available per SM in bytes (configurable split ignored;
    /// we model the 48 KiB shared-memory-preferred configuration).
    pub smem_bytes_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Maximum shared memory a single block may allocate, in bytes.
    pub max_smem_per_block: u32,
    /// Peak global-memory bandwidth in GB/s.
    pub gm_bandwidth_gbs: f64,
    /// Global-memory load transaction (cache line / segment) size in bytes.
    pub gm_transaction_bytes: u64,
    /// Global-memory store transaction size in bytes (GDDR5 parts write
    /// through 32-byte sectors, so scattered stores are charged less than
    /// scattered loads).
    pub gm_store_transaction_bytes: u64,
    /// Per-SM read-only (texture) cache capacity in bytes. 48 KiB on every
    /// part the paper discusses; a sweepable axis for the replay farm's
    /// what-if grids.
    pub ro_cache_bytes: u64,
    /// Constant memory size in bytes.
    pub cm_bytes: u64,
    /// Constant-cache line size in bytes.
    pub cm_line_bytes: u64,
    /// Warps needed per SM to fully hide pipeline and memory latency; used
    /// by the timing model's occupancy term.
    pub latency_hiding_warps: u32,
    /// Fraction of peak FMA issue a well-written kernel can sustain.
    /// Kepler requires dual-issue and high ILP to reach its nominal rate;
    /// the best hand-tuned SGEMMs reach ~75% (cuBLAS ~3.1 of 4.3 TFlop/s
    /// on the K40m), so 0.75 is the Kepler ceiling here.
    pub issue_efficiency: f64,
}

impl GpuSpec {
    /// The Tesla K40m used throughout the paper's evaluation: 15 SMX
    /// x 192 cores at 745 MHz (peak 4290 GFlop/s single precision), 288 GB/s
    /// GDDR5, 32 x 8-byte shared-memory banks.
    pub fn kepler_k40m() -> Self {
        GpuSpec {
            name: "Kepler K40m",
            sm_count: 15,
            cores_per_sm: 192,
            clock_ghz: 0.745,
            smem_banks: 32,
            bank_width: BankWidth::B8,
            smem_bytes_per_sm: 48 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 16,
            regs_per_sm: 65536,
            max_smem_per_block: 48 * 1024,
            gm_bandwidth_gbs: 288.0,
            gm_transaction_bytes: 128,
            gm_store_transaction_bytes: 32,
            ro_cache_bytes: 48 * 1024,
            cm_bytes: 64 * 1024,
            cm_line_bytes: 256,
            latency_hiding_warps: 16,
            issue_efficiency: 0.75,
        }
    }

    /// A Fermi-generation Tesla M2090: 16 SM x 32 cores at 1.3 GHz,
    /// 177 GB/s, 32 x 4-byte banks. Used to contrast the bank-width model
    /// (MAGMA was tuned for this part).
    pub fn fermi_m2090() -> Self {
        GpuSpec {
            name: "Fermi M2090",
            sm_count: 16,
            cores_per_sm: 32,
            clock_ghz: 1.3,
            smem_banks: 32,
            bank_width: BankWidth::B4,
            smem_bytes_per_sm: 48 * 1024,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            regs_per_sm: 32768,
            max_smem_per_block: 48 * 1024,
            gm_bandwidth_gbs: 177.0,
            gm_transaction_bytes: 128,
            gm_store_transaction_bytes: 32,
            ro_cache_bytes: 48 * 1024,
            cm_bytes: 64 * 1024,
            cm_line_bytes: 256,
            latency_hiding_warps: 12,
            issue_efficiency: 0.85,
        }
    }

    /// A Maxwell-like part with 4-byte banks, used by the short-data-type
    /// extension (paper section 6): with `fp16` or `int8` the mismatch
    /// reappears even on 4-byte-bank machines.
    pub fn maxwell_like() -> Self {
        GpuSpec {
            name: "Maxwell-like",
            sm_count: 16,
            cores_per_sm: 128,
            clock_ghz: 1.1,
            smem_banks: 32,
            bank_width: BankWidth::B4,
            smem_bytes_per_sm: 48 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            regs_per_sm: 65536,
            max_smem_per_block: 48 * 1024,
            gm_bandwidth_gbs: 224.0,
            gm_transaction_bytes: 128,
            gm_store_transaction_bytes: 32,
            ro_cache_bytes: 48 * 1024,
            cm_bytes: 64 * 1024,
            cm_line_bytes: 256,
            latency_hiding_warps: 16,
            issue_efficiency: 0.85,
        }
    }

    /// The paper's central ablation: a K40m with 4-byte banks instead of
    /// 8-byte ones. Everything else — SM count, clocks, DRAM, caches — is
    /// the real K40m, so comparing a kernel on [`GpuSpec::kepler_k40m`]
    /// versus this part isolates the bank-width mismatch effect (eq. 1)
    /// from every other architectural difference.
    pub fn kepler_k40m_4b() -> Self {
        GpuSpec {
            name: "Kepler K40m (4B banks)",
            bank_width: BankWidth::B4,
            ..Self::kepler_k40m()
        }
    }

    /// Resolves a preset by CLI-friendly alias (`"kepler"`, `"kepler-4b"`,
    /// `"fermi"`, `"maxwell"`) or by the exact `name` a preset carries
    /// (`"Kepler K40m"`, ...) — the latter is how trace decoding maps a
    /// recorded spec name back to a known part.
    pub fn preset(name: &str) -> Option<GpuSpec> {
        match name {
            "kepler" | "k40m" | "Kepler K40m" => Some(Self::kepler_k40m()),
            "kepler-4b" | "Kepler K40m (4B banks)" => Some(Self::kepler_k40m_4b()),
            "fermi" | "m2090" | "Fermi M2090" => Some(Self::fermi_m2090()),
            "maxwell" | "Maxwell-like" => Some(Self::maxwell_like()),
            _ => None,
        }
    }

    /// Every preset in canonical sweep order: the paper's evaluation machine
    /// first, then its 4-byte-bank ablation, then the contrast parts. This is
    /// the anchored preset list experiment harnesses (`whatif`, the replay
    /// farm) sweep instead of keeping their own ad-hoc copies.
    pub fn presets_all() -> Vec<GpuSpec> {
        vec![
            Self::kepler_k40m(),
            Self::kepler_k40m_4b(),
            Self::fermi_m2090(),
            Self::maxwell_like(),
        ]
    }

    /// Cartesian what-if grid builder anchored at this spec: every axis not
    /// explicitly swept keeps this spec's value. See [`SpecGrid`].
    pub fn grid(self) -> SpecGrid {
        SpecGrid::anchored(self)
    }

    /// Line capacity of this part's per-SM read-only (texture) cache:
    /// [`ro_cache_bytes`](Self::ro_cache_bytes) divided into load-transaction
    /// sized lines.
    pub fn ro_capacity_lines(&self) -> usize {
        // Delegates to the shared pricing helper so the at-least-one-line
        // clamp for degenerate swept caches applies everywhere.
        crate::pricing::ro_capacity_lines(self.ro_cache_bytes, self.gm_transaction_bytes)
    }

    /// Peak single-precision throughput in GFlop/s (2 flops per FMA lane per
    /// cycle).
    pub fn peak_gflops(&self) -> f64 {
        self.sm_count as f64 * self.cores_per_sm as f64 * 2.0 * self.clock_ghz
    }

    /// Core clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_ghz * 1e9
    }

    /// Shared-memory bandwidth per SM in bytes per cycle
    /// (`banks * bank_width`): the ceiling that the paper's matched access
    /// pattern saturates and the unmatched pattern halves.
    pub fn smem_bytes_per_cycle(&self) -> u64 {
        self.smem_banks as u64 * self.bank_width.bytes()
    }

    /// The mismatch factor `n` for this architecture and a given thread data
    /// width in bytes (see [`BankWidth::mismatch_factor`]).
    pub fn mismatch_factor(&self, data_width: u64) -> u64 {
        self.bank_width.mismatch_factor(data_width)
    }
}

impl Default for GpuSpec {
    /// Defaults to the paper's evaluation machine, the Kepler K40m.
    fn default() -> Self {
        GpuSpec::kepler_k40m()
    }
}

/// Cartesian grid of hypothetical parts, anchored at a base spec.
///
/// The replay farm sweeps the four architectural axes the paper's
/// memory-efficiency terms depend on — shared-memory bank width (eq. 1),
/// global-memory load transaction (line) size, read-only cache capacity and
/// SMX count — while every other parameter keeps the anchor's value, so each
/// grid cell isolates those axes exactly like [`GpuSpec::kepler_k40m_4b`]
/// isolates bank width.
///
/// Axes default to the anchor's own value; `build` validates every value and
/// emits specs in deterministic nested order (bank width, then line size,
/// then RO capacity, then SM count — last axis fastest).
///
/// # Examples
///
/// ```
/// use kconv_sim::{BankWidth, GpuSpec};
/// let grid = GpuSpec::kepler_k40m()
///     .grid()
///     .bank_widths(&[BankWidth::B4, BankWidth::B8])
///     .line_sizes(&[64, 128])
///     .build()
///     .unwrap();
/// assert_eq!(grid.len(), 4);
/// // Unswept axes anchor to the base part.
/// assert!(grid.iter().all(|s| s.sm_count == 15));
/// ```
#[derive(Debug, Clone)]
pub struct SpecGrid {
    base: GpuSpec,
    bank_widths: Vec<BankWidth>,
    line_sizes: Vec<u64>,
    ro_cache_bytes: Vec<u64>,
    sm_counts: Vec<u32>,
}

impl SpecGrid {
    /// A degenerate grid whose every axis holds just the anchor's value;
    /// building it unchanged yields exactly `vec![base]`.
    pub fn anchored(base: GpuSpec) -> Self {
        SpecGrid {
            bank_widths: vec![base.bank_width],
            line_sizes: vec![base.gm_transaction_bytes],
            ro_cache_bytes: vec![base.ro_cache_bytes],
            sm_counts: vec![base.sm_count],
            base,
        }
    }

    /// Sweep the shared-memory bank width (`W_SMB`).
    pub fn bank_widths(mut self, widths: &[BankWidth]) -> Self {
        self.bank_widths = widths.to_vec();
        self
    }

    /// Sweep the global-memory load transaction (cache line) size in bytes.
    pub fn line_sizes(mut self, bytes: &[u64]) -> Self {
        self.line_sizes = bytes.to_vec();
        self
    }

    /// Sweep the per-SM read-only cache capacity in bytes.
    pub fn ro_cache_bytes(mut self, bytes: &[u64]) -> Self {
        self.ro_cache_bytes = bytes.to_vec();
        self
    }

    /// Sweep the number of streaming multiprocessors.
    pub fn sm_counts(mut self, counts: &[u32]) -> Self {
        self.sm_counts = counts.to_vec();
        self
    }

    /// Number of cells the grid will produce.
    pub fn len(&self) -> usize {
        self.bank_widths.len()
            * self.line_sizes.len()
            * self.ro_cache_bytes.len()
            * self.sm_counts.len()
    }

    /// Whether any axis is empty (in which case [`build`](Self::build) errs).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the cartesian product in deterministic nested axis order.
    /// Derived specs keep the anchor's `name`; validation rejects empty axes,
    /// non-power-of-two or out-of-range line sizes, RO capacities smaller
    /// than one line, and zero SM counts.
    pub fn build(self) -> Result<Vec<GpuSpec>, String> {
        for (axis, len) in [
            ("bank_widths", self.bank_widths.len()),
            ("line_sizes", self.line_sizes.len()),
            ("ro_cache_bytes", self.ro_cache_bytes.len()),
            ("sm_counts", self.sm_counts.len()),
        ] {
            if len == 0 {
                return Err(format!("spec grid axis `{axis}` is empty"));
            }
        }
        for &line in &self.line_sizes {
            if !line.is_power_of_two() || !(32..=1024).contains(&line) {
                return Err(format!(
                    "line size {line} must be a power of two in 32..=1024"
                ));
            }
        }
        for &ro in &self.ro_cache_bytes {
            let min_line = *self.line_sizes.iter().max().unwrap();
            if ro < min_line {
                return Err(format!(
                    "ro cache of {ro} B holds less than one {min_line} B line"
                ));
            }
        }
        if self.sm_counts.contains(&0) {
            return Err("sm_counts must be positive".into());
        }
        let mut specs = Vec::with_capacity(self.len());
        for &bank_width in &self.bank_widths {
            for &line in &self.line_sizes {
                for &ro in &self.ro_cache_bytes {
                    for &sm_count in &self.sm_counts {
                        specs.push(GpuSpec {
                            bank_width,
                            gm_transaction_bytes: line,
                            ro_cache_bytes: ro,
                            sm_count,
                            ..self.base.clone()
                        });
                    }
                }
            }
        }
        Ok(specs)
    }
}

impl std::fmt::Display for GpuSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} SM x {} cores @ {:.0} MHz, {:.0} GFlop/s peak, {} x {}, {:.0} GB/s)",
            self.name,
            self.sm_count,
            self.cores_per_sm,
            self.clock_ghz * 1e3,
            self.peak_gflops(),
            self.smem_banks,
            self.bank_width,
            self.gm_bandwidth_gbs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40m_peak_matches_paper() {
        let spec = GpuSpec::kepler_k40m();
        assert!((spec.peak_gflops() - 4291.2).abs() < 1.0);
    }

    #[test]
    fn fermi_peak_is_plausible() {
        let spec = GpuSpec::fermi_m2090();
        assert!((spec.peak_gflops() - 1331.2).abs() < 1.0);
    }

    #[test]
    fn bank_width_bytes() {
        assert_eq!(BankWidth::B4.bytes(), 4);
        assert_eq!(BankWidth::B8.bytes(), 8);
    }

    #[test]
    fn mismatch_factors() {
        // Paper section 2.1: n = 2 for float on Kepler.
        assert_eq!(BankWidth::B8.mismatch_factor(4), 2);
        // fp16 on Kepler: n = 4.
        assert_eq!(BankWidth::B8.mismatch_factor(2), 4);
        // int8 on Kepler: n = 8.
        assert_eq!(BankWidth::B8.mismatch_factor(1), 8);
        // Matched cases.
        assert_eq!(BankWidth::B8.mismatch_factor(8), 1);
        assert_eq!(BankWidth::B4.mismatch_factor(4), 1);
    }

    #[test]
    #[should_panic(expected = "data width")]
    fn mismatch_factor_rejects_oversized_width() {
        BankWidth::B4.mismatch_factor(8);
    }

    #[test]
    fn smem_bandwidth_doubles_on_kepler() {
        let k = GpuSpec::kepler_k40m();
        let f = GpuSpec::fermi_m2090();
        assert_eq!(k.smem_bytes_per_cycle(), 2 * f.smem_bytes_per_cycle());
    }

    #[test]
    fn display_is_nonempty() {
        let s = format!("{}", GpuSpec::kepler_k40m());
        assert!(s.contains("K40m"));
        let b = format!("{}", BankWidth::B8);
        assert!(b.contains('8'));
    }

    #[test]
    fn default_is_k40m() {
        assert_eq!(GpuSpec::default(), GpuSpec::kepler_k40m());
    }

    #[test]
    fn hypothetical_4b_kepler_differs_only_in_bank_width() {
        let real = GpuSpec::kepler_k40m();
        let flat = GpuSpec::kepler_k40m_4b();
        assert_eq!(flat.bank_width, BankWidth::B4);
        assert_eq!(flat.smem_bytes_per_cycle(), real.smem_bytes_per_cycle() / 2);
        assert_eq!(
            GpuSpec {
                name: real.name,
                bank_width: real.bank_width,
                ..flat
            },
            real
        );
    }

    #[test]
    fn presets_resolve_by_alias_and_exact_name() {
        assert_eq!(GpuSpec::preset("kepler"), Some(GpuSpec::kepler_k40m()));
        assert_eq!(
            GpuSpec::preset("kepler-4b"),
            Some(GpuSpec::kepler_k40m_4b())
        );
        assert_eq!(GpuSpec::preset("fermi"), Some(GpuSpec::fermi_m2090()));
        assert_eq!(GpuSpec::preset("maxwell"), Some(GpuSpec::maxwell_like()));
        for spec in [
            GpuSpec::kepler_k40m(),
            GpuSpec::kepler_k40m_4b(),
            GpuSpec::fermi_m2090(),
            GpuSpec::maxwell_like(),
        ] {
            assert_eq!(GpuSpec::preset(spec.name), Some(spec));
        }
        assert_eq!(GpuSpec::preset("volta"), None);
    }

    #[test]
    fn presets_all_matches_individual_constructors() {
        let all = GpuSpec::presets_all();
        assert_eq!(
            all,
            vec![
                GpuSpec::kepler_k40m(),
                GpuSpec::kepler_k40m_4b(),
                GpuSpec::fermi_m2090(),
                GpuSpec::maxwell_like(),
            ]
        );
    }

    #[test]
    fn degenerate_grid_is_the_anchor() {
        let grid = GpuSpec::kepler_k40m().grid().build().unwrap();
        assert_eq!(grid, vec![GpuSpec::kepler_k40m()]);
    }

    #[test]
    fn grid_order_is_deterministic_nested() {
        let grid = GpuSpec::kepler_k40m()
            .grid()
            .bank_widths(&[BankWidth::B4, BankWidth::B8])
            .line_sizes(&[64, 128])
            .ro_cache_bytes(&[24 * 1024, 48 * 1024])
            .sm_counts(&[8, 15])
            .build()
            .unwrap();
        assert_eq!(grid.len(), 16);
        // Last axis varies fastest; first axis slowest.
        assert_eq!(grid[0].sm_count, 8);
        assert_eq!(grid[1].sm_count, 15);
        assert_eq!(grid[0].ro_cache_bytes, 24 * 1024);
        assert_eq!(grid[2].ro_cache_bytes, 48 * 1024);
        assert_eq!(grid[0].gm_transaction_bytes, 64);
        assert_eq!(grid[4].gm_transaction_bytes, 128);
        assert_eq!(grid[0].bank_width, BankWidth::B4);
        assert_eq!(grid[8].bank_width, BankWidth::B8);
        // Unswept axes anchor to the base spec.
        assert!(grid.iter().all(|s| {
            s.name == "Kepler K40m" && s.cores_per_sm == 192 && s.gm_store_transaction_bytes == 32
        }));
    }

    #[test]
    fn grid_validates_axes() {
        assert!(GpuSpec::kepler_k40m()
            .grid()
            .line_sizes(&[])
            .build()
            .unwrap_err()
            .contains("line_sizes"));
        assert!(GpuSpec::kepler_k40m()
            .grid()
            .line_sizes(&[96])
            .build()
            .unwrap_err()
            .contains("power of two"));
        assert!(GpuSpec::kepler_k40m()
            .grid()
            .ro_cache_bytes(&[64])
            .build()
            .unwrap_err()
            .contains("less than one"));
        assert!(GpuSpec::kepler_k40m()
            .grid()
            .sm_counts(&[0])
            .build()
            .unwrap_err()
            .contains("positive"));
    }

    #[test]
    fn ro_capacity_lines_tracks_both_axes() {
        assert_eq!(GpuSpec::kepler_k40m().ro_capacity_lines(), 384);
        let mut small = GpuSpec::kepler_k40m();
        small.ro_cache_bytes = 24 * 1024;
        small.gm_transaction_bytes = 64;
        assert_eq!(small.ro_capacity_lines(), 384);
        small.gm_transaction_bytes = 128;
        assert_eq!(small.ro_capacity_lines(), 192);
        // Degenerate hand-built spec: clamped to one line, never zero.
        small.ro_cache_bytes = 64;
        assert_eq!(small.ro_capacity_lines(), 1);
    }
}

//! Spec-parameterized pricing primitives shared by the live memory models
//! and the offline trace replayer.
//!
//! Every counter the simulator charges for a warp memory instruction is a
//! pure function of *(per-lane addresses, active mask, bytes per lane)* and
//! a handful of [`GpuSpec`](crate::GpuSpec) parameters — transaction
//! (segment) size for global-memory coalescing, bank count and
//! [`BankWidth`](crate::BankWidth) for shared-memory replays, line sizes
//! for the read-only and constant caches. This module exposes those
//! functions directly, with the spec parameters as plain arguments, so that
//! a consumer holding only recorded addresses (the `kconv-replay` crate
//! re-pricing a binary trace under a foreign `GpuSpec`) charges **exactly**
//! the same counters as the live memory models in [`crate::mem`] — the two
//! paths share this code, which is what makes
//! replay-under-capture-spec bit-identical to the live counters by
//! construction rather than by coincidence.
//!
//! What lives here:
//!
//! * [`for_each_unit`] — the distinct-unit scan under all dedup-based
//!   counters (segments, cache lines, distinct constant addresses);
//! * [`segment_count`] — global-memory transactions for one warp access;
//! * [`RoCache`] — the per-block FIFO residency model of the read-only
//!   (texture) cache, with [`ro_capacity_lines`] giving its line capacity
//!   for a given transaction size;
//! * re-exports of [`bank_conflict_cycles`] / [`BankAccessOutcome`], the
//!   shared-memory bank model (defined in [`crate::mem`], already
//!   spec-parameterized by bank count and width).
//!
//! What deliberately does *not* live here: anything that needs the data
//! values or the kernel itself — functional outputs, sanitizer shadows,
//! fault checks. A trace records addresses, not bytes, so replay can
//! recompute costs but never results (see DESIGN.md §11).

use std::collections::{HashSet, VecDeque};
use std::hash::BuildHasherDefault;

use crate::mem::{dedup, lanes};
use crate::warp::{LaneMask, WarpAddrs};

pub use crate::mem::{bank_conflict_cycles, BankAccessOutcome};

/// Size of the per-SM read-only (texture) cache modeled by [`RoCache`]:
/// Kepler's 48 KiB.
pub const RO_CACHE_BYTES: u64 = 48 * 1024;

/// Visits every `unit`-sized aligned index covered by the active lanes'
/// `[addr, addr + width)` byte ranges, in lane order (ascending within one
/// lane's span), calling `visit(unit_index, first_occurrence)` for each.
/// `unit` must be a power of two.
///
/// This is the one distinct-unit scan behind every dedup-based counter:
/// global-memory segments, read-only/constant cache lines, distinct
/// constant addresses. Visit order is part of the contract — the read-only
/// cache's FIFO inserts lines in first-visit order.
pub fn for_each_unit(
    addrs: &WarpAddrs,
    width: u64,
    mask: LaneMask,
    unit: u64,
    visit: impl FnMut(u64, bool),
) {
    dedup::for_each_unit(addrs, width, mask, unit, visit);
}

/// Number of distinct aligned segments of `seg` bytes covered by the active
/// lanes' `[addr, addr + width)` ranges — the global-memory transaction
/// count for one warp instruction on a part with `seg`-byte transactions.
///
/// # Examples
///
/// ```
/// use kconv_sim::{lane_addrs, pricing, LaneMask};
/// // A fully coalesced warp of floats: one 128-byte transaction.
/// assert_eq!(pricing::segment_count(&lane_addrs(0, 4), 4, LaneMask::ALL, 128), 1);
/// // The same addresses on a 32-byte-sector part: four transactions.
/// assert_eq!(pricing::segment_count(&lane_addrs(0, 4), 4, LaneMask::ALL, 32), 4);
/// ```
pub fn segment_count(addrs: &WarpAddrs, width: u64, mask: LaneMask, seg: u64) -> u64 {
    // Distinct-unit counting is order-insensitive, so it runs on the
    // dispatched lane backend ([`crate::mem::lanes`]) rather than the
    // ordered visitor above.
    lanes::distinct_units(addrs, width, mask, seg)
}

/// Line capacity of a per-SM read-only (texture) cache of `ro_cache_bytes`
/// on a part whose load transactions (= cache lines) are
/// `ld_transaction_bytes` wide. Pass [`RO_CACHE_BYTES`] for the 48 KiB cache
/// every real part here carries, or a swept
/// [`GpuSpec::ro_cache_bytes`](crate::GpuSpec::ro_cache_bytes) for what-if
/// grids.
///
/// Clamped to at least one line: a swept `ro_cache_bytes` smaller than the
/// transaction size would otherwise build a capacity-0 cache in which every
/// touch misses *and* immediately evicts its own insertion — a degenerate
/// model no hardware corresponds to. (`GpuSpec::grid` additionally rejects
/// such sweeps at validation time; the clamp covers hand-built specs.)
pub fn ro_capacity_lines(ro_cache_bytes: u64, ld_transaction_bytes: u64) -> usize {
    ((ro_cache_bytes / ld_transaction_bytes) as usize).max(1)
}

/// Multiplicative mixer for cache-line indices. Line numbers are small,
/// dense integers; the std `HashSet` default (SipHash) costs more than the
/// rest of the cache probe combined, and no untrusted input reaches these
/// sets.
#[derive(Default)]
struct LineHasher(u64);

impl std::hash::Hasher for LineHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write_u64(&mut self, v: u64) {
        let h = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 29);
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(self.0.rotate_left(8) ^ u64::from(b));
        }
    }
}

type LineSet = HashSet<u64, BuildHasherDefault<LineHasher>>;

/// Per-block residency model of the 48 KiB per-SM read-only (texture)
/// cache, FIFO-evicted at line granularity.
///
/// Only intra-block reuse is dependable on real hardware, so the serial
/// launcher always reset this state per block; making it a per-block value
/// changes nothing about the counts.
#[derive(Debug)]
pub struct RoCache {
    lines: LineSet,
    fifo: VecDeque<u64>,
    capacity: usize,
}

impl RoCache {
    /// An empty cache holding at most `capacity_lines` lines (see
    /// [`ro_capacity_lines`]).
    pub fn new(capacity_lines: usize) -> Self {
        RoCache {
            lines: LineSet::default(),
            fifo: VecDeque::new(),
            capacity: capacity_lines,
        }
    }

    /// Returns whether `line` was resident, inserting it (with FIFO
    /// eviction) if not. One hash probe per touch: `insert`'s return value
    /// doubles as the residency test.
    pub fn touch(&mut self, line: u64) -> bool {
        if !self.lines.insert(line) {
            return true;
        }
        self.fifo.push_back(line);
        if self.fifo.len() > self.capacity {
            if let Some(old) = self.fifo.pop_front() {
                self.lines.remove(&old);
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warp::lane_addrs;

    #[test]
    fn segment_count_is_spec_parameterized() {
        let a = lane_addrs(0, 4);
        assert_eq!(segment_count(&a, 4, LaneMask::ALL, 128), 1);
        assert_eq!(segment_count(&a, 4, LaneMask::ALL, 32), 4);
        assert_eq!(segment_count(&a, 4, LaneMask::NONE, 128), 0);
        // Strided by a full line: one segment per active lane.
        assert_eq!(
            segment_count(&lane_addrs(0, 128), 4, LaneMask::first(7), 128),
            7
        );
    }

    #[test]
    fn ro_cache_fifo_evicts_in_insertion_order() {
        let mut ro = RoCache::new(2);
        assert!(!ro.touch(1)); // miss
        assert!(!ro.touch(2)); // miss
        assert!(ro.touch(1)); // hit
        assert!(!ro.touch(3)); // miss, evicts 1 (FIFO ignores the re-touch)
        assert!(!ro.touch(1)); // miss again
        assert!(ro.touch(3)); // still resident
    }

    #[test]
    fn ro_capacity_tracks_line_size_and_cache_size() {
        assert_eq!(ro_capacity_lines(RO_CACHE_BYTES, 128), 384);
        assert_eq!(ro_capacity_lines(RO_CACHE_BYTES, 32), 1536);
        assert_eq!(ro_capacity_lines(24 * 1024, 128), 192);
    }

    #[test]
    fn ro_capacity_clamps_to_one_line_for_tiny_caches() {
        // A swept cache smaller than one transaction must not build a
        // capacity-0 cache (every touch would evict its own insertion).
        assert_eq!(ro_capacity_lines(64, 128), 1);
        assert_eq!(ro_capacity_lines(0, 128), 1);
        let mut ro = RoCache::new(ro_capacity_lines(64, 128));
        assert!(!ro.touch(7)); // miss
        assert!(ro.touch(7)); // the one line is actually resident
    }

    #[test]
    fn ro_cache_single_probe_touch_keeps_fifo_semantics() {
        // Regression for the contains-then-insert double probe: hits must
        // not re-enqueue a line, so the FIFO never outgrows the set and
        // eviction order stays pure insertion order under heavy re-touching.
        let mut ro = RoCache::new(3);
        assert!(!ro.touch(10));
        assert!(!ro.touch(20));
        assert!(!ro.touch(30));
        for _ in 0..100 {
            assert!(ro.touch(10)); // hits; must not push FIFO entries
        }
        assert_eq!(ro.fifo.len(), 3);
        assert_eq!(ro.lines.len(), 3);
        assert!(!ro.touch(40)); // evicts 10 — oldest insertion, despite hits
        assert!(ro.touch(20)); // 20/30 untouched by the churn
        assert!(ro.touch(30));
        assert!(!ro.touch(10)); // 10 really was evicted
    }
}

//! # kconv-sim — a Kepler-class GPU memory-hierarchy simulator
//!
//! This crate is the hardware substrate for the `kconv` workspace, which
//! reproduces *"Optimizing Memory Efficiency for Convolution Kernels on
//! Kepler GPUs"* (Chen, Chen, Chen, Hu — DAC 2017) in pure Rust. The paper's
//! results are all **memory-system effects observable at warp granularity**,
//! so the simulator models exactly that level:
//!
//! * [`mem::SharedMemory`] — 32 banks of configurable width (8 bytes on
//!   Kepler, 4 bytes elsewhere), with bank-conflict replays and same-word
//!   broadcast. This is where the paper's `W_SMB = n * W_CD` mismatch model
//!   lives; see [`bank_conflict_cycles`].
//! * [`mem::GlobalMemory`] — byte-addressable DRAM serviced in 128-byte
//!   transactions, with per-warp coalescing analysis.
//! * [`mem::ConstantMemory`] — warp-broadcast semantics and a line-granular
//!   cache model.
//! * [`Gpu::launch`] — warp-synchronous execution of kernel closures over a
//!   grid of thread blocks, with optional block sampling for large sweeps
//!   and an optional multi-threaded block loop ([`Parallelism`]) whose
//!   counters and outputs are bit-identical to serial execution (see the
//!   [`launch`] module docs for the argument).
//! * [`timing`] — a documented trace-driven cost model turning the counted
//!   events into seconds and GFlop/s on the published K40m rates.
//! * [`fault`] — device-side fault containment and the opt-in sanitizer
//!   tools (memcheck / racecheck / synccheck, `KCONV_SANITIZE`): kernel
//!   bugs surface as typed [`SimError::KernelFault`] values naming the
//!   exact kernel/block/warp/thread instead of tearing down the process.
//!
//! Kernels written against this API move **real data**: outputs are
//! validated against CPU references in the kernel crates. Timing is a model
//! (not cycle-accurate RTL); the experiment write-ups treat ratios between
//! kernels — which derive from exactly counted traffic — as the meaningful
//! quantity.
//!
//! ## Example
//!
//! A warp reading 32 consecutive `float`s from shared memory on Kepler uses
//! only half the fabric; reading `float2`s uses all of it — the paper's
//! Fig. 1 in four lines:
//!
//! ```
//! use kconv_sim::{bank_conflict_cycles, lane_addrs, BankWidth, LaneMask};
//!
//! let unmatched = bank_conflict_cycles(&lane_addrs(0, 4), 4, LaneMask::ALL, 32, BankWidth::B8);
//! let matched = bank_conflict_cycles(&lane_addrs(0, 8), 8, LaneMask::ALL, 32, BankWidth::B8);
//! assert_eq!(unmatched.cycles, matched.cycles); // both conflict-free...
//! // ...but the matched access moved twice the bytes per cycle.
//! ```
//!
//! See [`Gpu`] for a complete launch example.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod block;
mod error;
pub mod fault;
pub mod launch;
pub mod mem;
pub mod pricing;
mod report;
mod spec;
mod stats;
#[cfg(test)]
pub(crate) mod testrng;
pub mod timing;
pub mod trace;
mod warp;

pub use block::{BlockCtx, BlockDims, WarpCtx};
pub use error::{Result, SimError};
pub use fault::{
    AccessKind, DeviceFault, FaultInjection, FaultKind, FaultSchedule, Hazard, MemSpace,
    SanitizerMode,
};
pub use launch::{Gpu, LaunchConfig, LaunchReport, Parallelism, SimMode};
pub use mem::{
    bank_conflict_cycles, BankAccessOutcome, ConstantMemory, GlobalMemory, GmBuf, SharedMemory,
};
pub use report::render_report;
pub use spec::{BankWidth, GpuSpec, SpecGrid, WARP_SIZE};
pub use stats::KernelStats;
pub use timing::{occupancy, Occupancy, OverlapMode, Timing};
pub use trace::{TraceEvent, TraceLaunch, TraceOp, TraceSink};
pub use warp::{lane_addrs, lane_addrs_from, lane_addrs_uniform, LaneIter, LaneMask, WarpAddrs};

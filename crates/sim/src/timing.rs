//! Trace-driven timing model.
//!
//! The simulator counts events exactly (FMA lane-ops, shared-memory replay
//! cycles, global-memory transactions, constant-memory serializations,
//! barriers); this module converts those counts into seconds using the
//! published machine rates in [`GpuSpec`]. The model is deliberately simple
//! and fully documented:
//!
//! * **Compute**: FMA/ALU lane-ops issue at `cores_per_sm x
//!   issue_efficiency` lanes per cycle per SM.
//! * **Shared memory**: one warp access per SM per cycle; bank conflicts
//!   multiply an access's cycles (counted by the bank model).
//! * **Constant memory**: only serialization cycles cost (a cached uniform
//!   read is folded into the consuming instruction, as on real hardware).
//! * **Global memory**: bus bytes (whole transactions, plus constant-cache
//!   miss lines) at the chip bandwidth.
//! * **Load imbalance**: a grid of `B` blocks on `S` SMs runs
//!   `ceil(B/S)*S/B` slower than perfectly balanced.
//! * **Latency floor**: each barrier-delimited phase must cover the
//!   global-memory latency unless enough blocks are resident to interleave.
//! * **Overlap**: components overlap according to the kernel's
//!   [`OverlapMode`] scaled by occupancy: `t = max + (1 - q·hide)(sum - max)`.
//!
//! Absolute times therefore carry model error (documented in
//! `EXPERIMENTS.md`); *ratios* between kernels are driven by the exactly
//! counted traffic, which is what the paper's conclusions rest on.

use crate::error::{Result, SimError};
use crate::launch::LaunchConfig;
use crate::spec::{GpuSpec, WARP_SIZE};
use crate::stats::KernelStats;

/// Global-memory latency in core cycles (Kepler measures ~230-600 depending
/// on hit level; 400 is a representative round number).
pub const GM_LATENCY_CYCLES: f64 = 400.0;

/// Cost of one `__syncthreads()` in core cycles.
pub const BARRIER_CYCLES: f64 = 20.0;

/// Fixed kernel-launch overhead in seconds (driver + dispatch).
pub const LAUNCH_OVERHEAD_S: f64 = 4e-6;

/// How well a kernel overlaps computation with communication.
///
/// The paper's kernels prefetch the next tile into registers while computing
/// on the current one ([`OverlapMode::Prefetch`]); naive kernels serialize
/// loads and math ([`OverlapMode::Serial`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverlapMode {
    /// Double-buffered / register-prefetched: near-full overlap.
    #[default]
    Prefetch,
    /// Some natural overlap from warp scheduling only.
    Moderate,
    /// Load-then-compute with no software pipelining.
    Serial,
}

impl OverlapMode {
    /// Fraction of the non-critical components hidden under the critical
    /// one at full occupancy.
    pub fn quality(self) -> f64 {
        match self {
            OverlapMode::Prefetch => 0.90,
            OverlapMode::Moderate => 0.55,
            OverlapMode::Serial => 0.15,
        }
    }

    /// Stable single-byte encoding used by the KTRC v2 trace format.
    pub const fn as_u8(self) -> u8 {
        match self {
            OverlapMode::Prefetch => 0,
            OverlapMode::Moderate => 1,
            OverlapMode::Serial => 2,
        }
    }

    /// Inverse of [`OverlapMode::as_u8`]; `None` for unknown encodings.
    pub const fn from_u8(v: u8) -> Option<OverlapMode> {
        match v {
            0 => Some(OverlapMode::Prefetch),
            1 => Some(OverlapMode::Moderate),
            2 => Some(OverlapMode::Serial),
            _ => None,
        }
    }
}

/// Residency of a launch on one SM, computed from the architectural limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occupancy {
    /// Blocks resident per SM.
    pub blocks_per_sm: u32,
    /// Warps resident per SM.
    pub resident_warps: u32,
    /// Which resource bounded the residency.
    pub limiter: &'static str,
}

/// Computes the occupancy of `cfg` on `spec`.
///
/// # Errors
///
/// Returns [`SimError::InvalidLaunch`] if the block cannot run at all (too
/// many threads, too much shared memory, or register demand above the SM
/// capacity).
pub fn occupancy(spec: &GpuSpec, cfg: &LaunchConfig) -> Result<Occupancy> {
    if cfg.threads_per_block == 0 || cfg.blocks == 0 {
        return Err(SimError::InvalidLaunch(
            "grid and block must be non-empty".into(),
        ));
    }
    if cfg.threads_per_block > 1024 {
        return Err(SimError::InvalidLaunch(format!(
            "{} threads per block exceeds the 1024 limit",
            cfg.threads_per_block
        )));
    }
    if cfg.smem_bytes > spec.max_smem_per_block {
        return Err(SimError::InvalidLaunch(format!(
            "{} B of shared memory exceeds the {} B per-block limit",
            cfg.smem_bytes, spec.max_smem_per_block
        )));
    }
    let warps_per_block = (cfg.threads_per_block as u32).div_ceil(WARP_SIZE as u32);
    let mut bps = spec.max_blocks_per_sm;
    let mut limiter = "blocks";
    let lim_threads = spec.max_threads_per_sm / cfg.threads_per_block as u32;
    if lim_threads < bps {
        bps = lim_threads;
        limiter = "threads";
    }
    if let Some(lim_smem) = spec.smem_bytes_per_sm.checked_div(cfg.smem_bytes) {
        if lim_smem < bps {
            bps = lim_smem;
            limiter = "shared memory";
        }
    }
    if cfg.regs_per_thread > 0 {
        let regs_per_block = (cfg.regs_per_thread * cfg.threads_per_block as u32).max(1);
        let lim_regs = spec.regs_per_sm / regs_per_block;
        if lim_regs < bps {
            bps = lim_regs;
            limiter = "registers";
        }
    }
    if bps == 0 {
        return Err(SimError::InvalidLaunch(format!(
            "block does not fit on an SM (limited by {limiter})"
        )));
    }
    Ok(Occupancy {
        blocks_per_sm: bps,
        resident_warps: bps * warps_per_block,
        limiter,
    })
}

/// Timing breakdown for one launch, all components in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Arithmetic issue time (FMA + ALU lane-ops).
    pub t_compute: f64,
    /// Shared-memory pipeline time (incl. bank-conflict replays).
    pub t_smem: f64,
    /// Constant-memory serialization time.
    pub t_cm: f64,
    /// Global-memory bus time (transactions + constant-cache miss lines).
    pub t_gm: f64,
    /// Barrier overhead.
    pub t_barrier: f64,
    /// Latency floor from barrier-delimited dependent phases.
    pub t_latency: f64,
    /// Modeled wall-clock time of the launch.
    pub t_total: f64,
    /// Occupancy used for the overlap term.
    pub occupancy: Occupancy,
    /// Achieved throughput (`stats.flops() / t_total`), in GFlop/s.
    pub gflops: f64,
}

impl Timing {
    /// Name of the dominant cost component.
    pub fn bottleneck(&self) -> &'static str {
        let compute = self.t_compute + self.t_barrier;
        let smem = self.t_smem + self.t_cm;
        let mut name = "compute";
        let mut best = compute;
        if smem > best {
            best = smem;
            name = "shared memory";
        }
        if self.t_gm > best {
            best = self.t_gm;
            name = "global memory";
        }
        if self.t_latency > best {
            name = "latency";
        }
        name
    }
}

impl std::fmt::Display for Timing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} ms ({:.1} GFlop/s; compute {:.3} ms, smem {:.3} ms, gmem {:.3} ms, bound by {})",
            self.t_total * 1e3,
            self.gflops,
            self.t_compute * 1e3,
            self.t_smem * 1e3,
            self.t_gm * 1e3,
            self.bottleneck()
        )
    }
}

/// Evaluates the timing model for one launch.
///
/// `stats` must describe the **whole** grid (the launcher scales sampled
/// executions before calling this).
///
/// # Errors
///
/// Returns [`SimError::InvalidLaunch`] if the configuration cannot run (see
/// [`occupancy`]).
pub fn evaluate(spec: &GpuSpec, cfg: &LaunchConfig, stats: &KernelStats) -> Result<Timing> {
    let occ = occupancy(spec, cfg)?;
    let blocks = stats.blocks_total.max(1);
    let sm = spec.sm_count as u64;
    let clock = spec.clock_hz();

    // A grid of B blocks on S SMs takes ceil(B/S) block-rounds; relative to
    // perfect balance that is an inflation of ceil(B/S)*S/B >= 1.
    let imbalance = (blocks.div_ceil(sm) * sm) as f64 / blocks as f64;
    let per_sm = |cycles: f64| cycles / sm as f64 / clock * imbalance;

    let lane_cycles = (stats.fma_lane_ops + stats.alu_lane_ops) as f64
        / (spec.cores_per_sm as f64 * spec.issue_efficiency);
    let t_compute = per_sm(lane_cycles);
    let t_smem = per_sm(stats.sm_cycles() as f64);
    let t_cm = per_sm(stats.cm_cycles as f64);
    let t_barrier = per_sm(stats.barriers as f64 * BARRIER_CYCLES);

    let gm_bus_bytes = stats.gm_bytes_bus() + stats.cm_misses * spec.cm_line_bytes;
    let t_gm = gm_bus_bytes as f64 / (spec.gm_bandwidth_gbs * 1e9) * imbalance;

    // Latency floor: each barrier-delimited phase of each block has a
    // dependent global-memory round trip; resident blocks interleave to
    // cover it.
    let interleave = occ.blocks_per_sm.min(blocks.div_ceil(sm) as u32).max(1) as f64;
    let t_latency = per_sm(stats.barriers as f64 * GM_LATENCY_CYCLES) / interleave;

    let comp = t_compute + t_barrier;
    let smm = t_smem + t_cm;
    let parts = [comp, smm, t_gm];
    let max3 = parts.iter().cloned().fold(0.0f64, f64::max);
    let sum3: f64 = parts.iter().sum();
    let hide = (occ.resident_warps as f64 / spec.latency_hiding_warps as f64).min(1.0);
    let q = cfg.overlap.quality() * hide;
    let t_total = max3.max(t_latency) + (1.0 - q) * (sum3 - max3) + LAUNCH_OVERHEAD_S;

    let gflops = stats.flops() as f64 / t_total / 1e9;
    Ok(Timing {
        t_compute,
        t_smem,
        t_cm,
        t_gm,
        t_barrier,
        t_latency,
        t_total,
        occupancy: occ,
        gflops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::LaunchConfig;

    fn cfg(blocks: usize, threads: usize) -> LaunchConfig {
        LaunchConfig::new("t", blocks, threads)
    }

    fn spec() -> GpuSpec {
        GpuSpec::kepler_k40m()
    }

    #[test]
    fn occupancy_limited_by_threads() {
        let occ = occupancy(&spec(), &cfg(100, 1024)).unwrap();
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.resident_warps, 64);
        assert_eq!(occ.limiter, "threads");
    }

    #[test]
    fn occupancy_limited_by_smem() {
        let mut c = cfg(100, 64);
        c.smem_bytes = 20 * 1024;
        let occ = occupancy(&spec(), &c).unwrap();
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiter, "shared memory");
    }

    #[test]
    fn occupancy_limited_by_regs() {
        let mut c = cfg(100, 256);
        c.regs_per_thread = 128;
        let occ = occupancy(&spec(), &c).unwrap();
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiter, "registers");
    }

    #[test]
    fn invalid_launches_rejected() {
        assert!(occupancy(&spec(), &cfg(0, 32)).is_err());
        assert!(occupancy(&spec(), &cfg(1, 0)).is_err());
        assert!(occupancy(&spec(), &cfg(1, 2048)).is_err());
        let mut c = cfg(1, 32);
        c.smem_bytes = 64 * 1024;
        assert!(occupancy(&spec(), &c).is_err());
        let mut c = cfg(1, 1024);
        c.regs_per_thread = 255;
        assert!(occupancy(&spec(), &c).is_err());
    }

    fn compute_stats(fma: u64, blocks: u64) -> KernelStats {
        KernelStats {
            fma_lane_ops: fma,
            blocks_total: blocks,
            blocks_executed: blocks,
            ..Default::default()
        }
    }

    #[test]
    fn pure_compute_approaches_issue_ceiling() {
        let s = spec();
        // Lots of flops, no memory: should approach issue_efficiency * peak.
        let stats = compute_stats(2_000_000_000, 15 * 16);
        let t = evaluate(&s, &cfg(15 * 16, 256), &stats).unwrap();
        let frac = t.gflops / s.peak_gflops();
        assert!(frac > 0.70 && frac <= s.issue_efficiency + 1e-9, "{frac}");
        assert_eq!(t.bottleneck(), "compute");
    }

    #[test]
    fn gm_bound_kernel_tracks_bandwidth() {
        let s = spec();
        let mut stats = compute_stats(1000, 15 * 64);
        stats.gm_ld_bytes_bus = 288_000_000; // 1 ms at 288 GB/s
        stats.gm_ld_bytes_useful = 288_000_000;
        let t = evaluate(&s, &cfg(15 * 64, 256), &stats).unwrap();
        assert!((t.t_gm - 1e-3).abs() < 1e-5, "{}", t.t_gm);
        assert_eq!(t.bottleneck(), "global memory");
    }

    #[test]
    fn imbalance_penalizes_small_grids() {
        let s = spec();
        let stats_big = compute_stats(1_500_000_000, 150);
        let t_big = evaluate(&s, &cfg(150, 256), &stats_big).unwrap();
        // Same total work in a single block: only one SM busy.
        let stats_one = compute_stats(1_500_000_000, 1);
        let t_one = evaluate(&s, &cfg(1, 256), &stats_one).unwrap();
        assert!(t_one.t_total > 10.0 * t_big.t_total);
    }

    #[test]
    fn sixteen_blocks_on_fifteen_sms_pay_a_second_round() {
        let s = spec();
        let t15 = evaluate(&s, &cfg(15, 256), &compute_stats(1_500_000_000, 15)).unwrap();
        let t16 = evaluate(&s, &cfg(16, 256), &compute_stats(1_600_000_000, 16)).unwrap();
        // 16 blocks do ~2x the wall time of 15 despite only 7% more work:
        // imbalance 2*15/16 = 1.875 times the 16/15 extra work = 2.0.
        let ratio = t16.t_compute / t15.t_compute;
        assert!((ratio - 2.0).abs() < 0.01, "{ratio}");
    }

    #[test]
    fn bank_conflicts_slow_smem_bound_kernels() {
        let s = spec();
        let mut a = compute_stats(1000, 150);
        a.sm_ld_requests = 1_000_000;
        a.sm_ld_cycles = 1_000_000;
        let mut b = a;
        b.sm_ld_cycles = 2_000_000; // 2-way conflicts
        let ta = evaluate(&s, &cfg(150, 256), &a).unwrap();
        let tb = evaluate(&s, &cfg(150, 256), &b).unwrap();
        assert!((tb.t_smem / ta.t_smem - 2.0).abs() < 1e-9);
    }

    #[test]
    fn prefetch_overlaps_better_than_serial() {
        let s = spec();
        let mut stats = compute_stats(500_000_000, 150);
        stats.gm_ld_bytes_bus = 100_000_000;
        let mut c = cfg(150, 256);
        c.overlap = OverlapMode::Prefetch;
        let tp = evaluate(&s, &c, &stats).unwrap();
        c.overlap = OverlapMode::Serial;
        let ts = evaluate(&s, &c, &stats).unwrap();
        assert!(ts.t_total > tp.t_total);
    }

    #[test]
    fn latency_floor_binds_tiny_phases() {
        let s = spec();
        // Many barriers, almost no work, occupancy 1 block per SM by smem.
        let mut stats = compute_stats(100, 15);
        stats.barriers = 150_000;
        let mut c = cfg(15, 256);
        c.smem_bytes = 40 * 1024;
        let t = evaluate(&s, &c, &stats).unwrap();
        assert_eq!(t.bottleneck(), "latency");
        assert!(t.t_total >= t.t_latency);
    }

    #[test]
    fn display_and_bottleneck() {
        let s = spec();
        let t = evaluate(&s, &cfg(150, 256), &compute_stats(1_000_000, 150)).unwrap();
        let text = t.to_string();
        assert!(text.contains("GFlop/s"));
    }

    #[test]
    fn overlap_quality_ordering() {
        assert!(OverlapMode::Prefetch.quality() > OverlapMode::Moderate.quality());
        assert!(OverlapMode::Moderate.quality() > OverlapMode::Serial.quality());
        assert_eq!(OverlapMode::default(), OverlapMode::Prefetch);
    }
}

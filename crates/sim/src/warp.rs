//! Warp-level primitives: lane masks and address-vector helpers.
//!
//! The simulator models execution at warp granularity because every memory
//! phenomenon the paper exploits — shared-memory bank conflicts, global-memory
//! coalescing, constant-memory broadcast — is defined over the 32 addresses
//! issued by one warp in one cycle.

use crate::spec::WARP_SIZE;

/// A set of active lanes within a warp, one bit per lane.
///
/// # Examples
///
/// ```
/// use kconv_sim::LaneMask;
/// let m = LaneMask::first(3);
/// assert!(m.is_active(0) && m.is_active(2) && !m.is_active(3));
/// assert_eq!(m.count(), 3);
/// assert_eq!(LaneMask::ALL.count(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaneMask(pub u32);

impl LaneMask {
    /// All 32 lanes active.
    pub const ALL: LaneMask = LaneMask(u32::MAX);
    /// No lane active.
    pub const NONE: LaneMask = LaneMask(0);

    /// Mask with the first `n` lanes active.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn first(n: usize) -> LaneMask {
        assert!(n <= WARP_SIZE, "lane count {n} exceeds warp size");
        if n == WARP_SIZE {
            LaneMask::ALL
        } else {
            LaneMask((1u32 << n) - 1)
        }
    }

    /// Mask built from a per-lane predicate.
    pub fn from_fn(f: impl Fn(usize) -> bool) -> LaneMask {
        let mut bits = 0u32;
        for lane in 0..WARP_SIZE {
            if f(lane) {
                bits |= 1 << lane;
            }
        }
        LaneMask(bits)
    }

    /// Whether `lane` is active.
    pub fn is_active(self, lane: usize) -> bool {
        debug_assert!(lane < WARP_SIZE);
        self.0 & (1 << lane) != 0
    }

    /// Number of active lanes.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether no lane is active.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether every lane is active. Hot loops branch on this to iterate
    /// `0..WARP_SIZE` directly: the sparse iterator's `bits &= bits - 1`
    /// step is a serial dependency chain 32 deep for a full mask.
    #[inline]
    pub fn is_all(self) -> bool {
        self == LaneMask::ALL
    }

    /// Iterator over the indices of active lanes.
    pub fn iter(self) -> LaneIter {
        LaneIter { bits: self.0 }
    }
}

impl Default for LaneMask {
    fn default() -> Self {
        LaneMask::ALL
    }
}

impl std::fmt::Display for LaneMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

/// Iterator over active lane indices, produced by [`LaneMask::iter`].
#[derive(Debug, Clone)]
pub struct LaneIter {
    bits: u32,
}

impl Iterator for LaneIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.bits == 0 {
            None
        } else {
            let lane = self.bits.trailing_zeros() as usize;
            self.bits &= self.bits - 1;
            Some(lane)
        }
    }
}

/// Per-lane byte addresses for one warp memory instruction.
pub type WarpAddrs = [u64; WARP_SIZE];

/// Builds the address vector `base + lane * stride` — the conventional
/// "contiguous threads access contiguous elements" pattern when
/// `stride == element size`, or the matched pattern when `stride == n *
/// element size` with a vector access.
pub fn lane_addrs(base: u64, stride: u64) -> WarpAddrs {
    std::array::from_fn(|lane| base + lane as u64 * stride)
}

/// Builds an address vector from a per-lane function.
pub fn lane_addrs_from(f: impl Fn(usize) -> u64) -> WarpAddrs {
    std::array::from_fn(f)
}

/// Address vector where every lane reads the same address (the
/// constant-memory / shared-memory broadcast pattern).
pub fn lane_addrs_uniform(addr: u64) -> WarpAddrs {
    [addr; WARP_SIZE]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_masks() {
        assert_eq!(LaneMask::first(0), LaneMask::NONE);
        assert_eq!(LaneMask::first(32), LaneMask::ALL);
        assert_eq!(LaneMask::first(5).count(), 5);
    }

    #[test]
    #[should_panic(expected = "warp size")]
    fn first_rejects_oversized() {
        LaneMask::first(33);
    }

    #[test]
    fn from_fn_matches_predicate() {
        let m = LaneMask::from_fn(|l| l % 2 == 0);
        assert_eq!(m.count(), 16);
        assert!(m.is_active(0));
        assert!(!m.is_active(1));
    }

    #[test]
    fn iter_yields_active_lanes_in_order() {
        let m = LaneMask::from_fn(|l| l == 1 || l == 30);
        let lanes: Vec<usize> = m.iter().collect();
        assert_eq!(lanes, vec![1, 30]);
        assert_eq!(LaneMask::NONE.iter().count(), 0);
        assert_eq!(LaneMask::ALL.iter().count(), 32);
    }

    #[test]
    fn lane_addrs_strided() {
        let a = lane_addrs(100, 4);
        assert_eq!(a[0], 100);
        assert_eq!(a[31], 100 + 31 * 4);
    }

    #[test]
    fn lane_addrs_uniform_broadcasts() {
        let a = lane_addrs_uniform(64);
        assert!(a.iter().all(|&x| x == 64));
    }

    #[test]
    fn default_mask_is_all() {
        assert_eq!(LaneMask::default(), LaneMask::ALL);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(LaneMask(0xff).to_string(), "0x000000ff");
    }
}

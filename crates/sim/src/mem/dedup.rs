//! Stack-allocated dedup of the address units touched by one warp access.
//!
//! Every memory-pipeline counter in this simulator is a function of the
//! *distinct* aligned units a warp instruction covers: 128-byte segments for
//! global-memory coalescing, bank words for shared-memory replays, cache
//! lines for the read-only and constant caches. The naive way to find them —
//! a linear `contains` scan over everything seen so far — is O(n²) in the
//! unit count and dominated the interpreter's hot path (a 32-lane `float2`
//! shared-memory access scans up to 64 entries 64 times).
//!
//! [`for_each_unit`] replaces that with a bitmap over the warp's unit
//! *range*: one pre-pass finds the minimum unit, then membership is one
//! test-and-set. Warp accesses are spatially local by construction (a block
//! addresses at most its shared-memory allocation, and coalesced global
//! patterns span a handful of segments), so the range almost always fits in
//! a two-word register bitmap — zeroing a wider scratch bitmap per access
//! would itself dominate the op. Ranges up to [`lanes::BITMAP_UNITS`] use a
//! 2 KiB stack bitmap; a pathological scatter wider than that falls back to
//! the original scan, keeping the counts identical for any input.
//!
//! Units are visited in lane order (then ascending within one lane's span),
//! exactly like the scans this replaces, so order-sensitive consumers — the
//! read-only cache's FIFO insertion order — are unchanged. Order-insensitive
//! counting (global segments, distinct constant addresses) should use
//! [`super::lanes::distinct_units`] instead, which dispatches to the
//! vectorized backends; this visitor is the order-preserving sibling, and
//! its pre-pass bounds come from the same engine so the two agree on span
//! semantics (saturating `addr + width - 1`) by construction.

use crate::mem::lanes::{self, BITMAP_UNITS, MAX_UNITS};
use crate::warp::{LaneMask, WarpAddrs};

/// Visits every `unit`-sized aligned index covered by the active lanes'
/// `[addr, addr.saturating_add(width - 1)]` ranges, in lane order, calling
/// `visit(unit_index, first_occurrence)` for each. `unit` must be a power
/// of two.
#[inline]
pub(crate) fn for_each_unit(
    addrs: &WarpAddrs,
    width: u64,
    mask: LaneMask,
    unit: u64,
    mut visit: impl FnMut(u64, bool),
) {
    debug_assert!(unit.is_power_of_two());
    // `unit` is a power of two, so unit arithmetic is a shift — a hardware
    // divide here would cost more than the rest of the routine combined
    // (up to 128 of them per warp access).
    let shift = unit.trailing_zeros();
    // Pre-pass: the warp's unit range, to anchor the bitmap. This runs on
    // the dispatched lane backend; the visit loops below stay scalar
    // because their contract is ordered.
    let Some((lo, hi)) = lanes::unit_bounds(addrs, width, mask, unit) else {
        return; // no active lanes
    };
    if hi - lo < 128 {
        // The common case by far — a full warp of `float2`s spans 64 bank
        // words, a coalesced global access a handful of segments — fits in
        // two registers, with no bitmap to clear.
        let mut seen = [0u64; 2];
        for lane in mask.iter() {
            let a = addrs[lane];
            let first = a >> shift;
            let last = a.saturating_add(width - 1) >> shift;
            for u in first..=last {
                let idx = (u - lo) as usize;
                let bit = 1u64 << (idx % 64);
                let word = &mut seen[idx / 64];
                let new = *word & bit == 0;
                *word |= bit;
                visit(u, new);
            }
        }
    } else if hi - lo < BITMAP_UNITS {
        let mut seen = [0u64; (BITMAP_UNITS / 64) as usize];
        for lane in mask.iter() {
            let a = addrs[lane];
            let first = a >> shift;
            let last = a.saturating_add(width - 1) >> shift;
            for u in first..=last {
                let idx = (u - lo) as usize;
                let bit = 1u64 << (idx % 64);
                let word = &mut seen[idx / 64];
                let new = *word & bit == 0;
                *word |= bit;
                visit(u, new);
            }
        }
    } else {
        // Scatter wider than the bitmap: the original linear-scan dedup.
        let mut units = [u64::MAX; MAX_UNITS];
        let mut n = 0usize;
        for lane in mask.iter() {
            let a = addrs[lane];
            let first = a >> shift;
            let last = a.saturating_add(width - 1) >> shift;
            for u in first..=last {
                let new = !units[..n].contains(&u);
                if new {
                    units[n] = u;
                    n += 1;
                }
                visit(u, new);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warp::{lane_addrs, lane_addrs_from, lane_addrs_uniform};

    /// Reference model: the plain scan over every covered unit.
    fn reference(addrs: &WarpAddrs, width: u64, mask: LaneMask, unit: u64) -> Vec<(u64, bool)> {
        let mut seen = Vec::new();
        let mut out = Vec::new();
        for lane in mask.iter() {
            let a = addrs[lane];
            for u in a / unit..=a.saturating_add(width - 1) / unit {
                let new = !seen.contains(&u);
                if new {
                    seen.push(u);
                }
                out.push((u, new));
            }
        }
        out
    }

    fn check(addrs: &WarpAddrs, width: u64, mask: LaneMask, unit: u64) {
        let mut got = Vec::new();
        for_each_unit(addrs, width, mask, unit, |u, new| got.push((u, new)));
        assert_eq!(got, reference(addrs, width, mask, unit));
    }

    #[test]
    fn matches_reference_on_common_patterns() {
        check(&lane_addrs(0, 4), 4, LaneMask::ALL, 128);
        check(&lane_addrs(0, 8), 8, LaneMask::ALL, 8);
        check(&lane_addrs(64, 256), 4, LaneMask::ALL, 128);
        check(&lane_addrs_uniform(40), 4, LaneMask::ALL, 8);
        check(&lane_addrs(0, 16), 16, LaneMask::first(7), 4);
        check(&lane_addrs(0, 4), 4, LaneMask::NONE, 128);
    }

    #[test]
    fn mid_range_spans_take_the_stack_bitmap_and_still_match() {
        // ~4096 units between the register tier (128) and the bitmap cap
        // (16384): strided lanes with duplicates.
        let addrs = lane_addrs_from(|l| (l as u64 % 16) * 1024);
        check(&addrs, 8, LaneMask::ALL, 4);
        check(&addrs, 16, LaneMask::from_fn(|l| l % 3 != 0), 8);
    }

    #[test]
    fn wide_scatter_takes_the_fallback_and_still_matches() {
        // Lanes spread over ~2^21 bytes: far wider than the bitmap range.
        let addrs = lane_addrs_from(|l| (l as u64) * 65536 + (l as u64 % 3));
        check(&addrs, 16, LaneMask::ALL, 128);
        check(&addrs, 4, LaneMask::from_fn(|l| l % 2 == 0), 32);
    }

    #[test]
    fn spans_adjacent_to_u64_max_saturate_instead_of_wrapping() {
        // `a + width - 1` would overflow here; the engine's saturating
        // span semantics keep the covered range well-defined.
        let addrs = lane_addrs_uniform(u64::MAX - 2);
        check(&addrs, 16, LaneMask::ALL, 128);
        check(&addrs, 4, LaneMask::first(3), 32);
    }

    #[test]
    fn misaligned_spans_cover_two_units() {
        // 16-byte access starting 4 bytes into a 4-byte unit grid covers 4
        // units per lane; every boundary case must match the scan.
        let addrs = lane_addrs_from(|l| 4 * l as u64 + 2);
        check(&addrs, 16, LaneMask::ALL, 4);
        check(&addrs, 16, LaneMask::ALL, 8);
    }
}

//! The 32-lane pricing engine: vectorized warp kernels with runtime
//! dispatch.
//!
//! Every counter the simulator charges — global-memory segments,
//! shared-memory bank words, constant-cache lines — is an integer function
//! of one warp's 32 lane addresses. PR 3 flattened those functions into
//! branch-light scalar loops ([`super::dedup`], `bank_conflict_cycles`);
//! this module is the next step the ROADMAP named: the same computations
//! expressed over whole 32-lane spans, in three interchangeable backends:
//!
//! * **`scalar`** — the reference: the sparse-iterator loops the rest of
//!   the crate shipped with, kept verbatim as the semantics oracle.
//! * **`swar`** — portable SIMD-within-a-register: all 32 lanes processed
//!   branchlessly with per-lane mask words (`0`/`!0`) instead of sparse
//!   bit iteration, and distinct-unit counting done by OR-ing per-lane
//!   *range masks* into a `u128`/word bitmap and popcounting — 64 unit
//!   occupancy bits per register instead of one test-and-set per unit.
//! * **`simd`** — `std::arch` x86_64 AVX2: four lanes per instruction for
//!   the word/min/max/predicate passes, with the same bitmap finish as
//!   `swar`. Selected only when `is_x86_feature_detected!("avx2")` holds;
//!   everywhere else (including non-x86 targets) it degrades to `swar`.
//!
//! ## Dispatch
//!
//! The backend is resolved once and cached in an atomic: `KCONV_LANES`
//! (`auto` | `scalar` | `swar` | `simd`) overrides, `auto` (and unset)
//! picks `simd` when AVX2 is available and `swar` otherwise. An unknown
//! value warns on stderr and falls back to `auto` rather than silently
//! changing what a bench measured. [`force`] re-points the cached choice
//! at runtime — that exists for the A/B benches and the differential
//! suite, which time or compare every backend inside one process.
//!
//! ## The bit-exactness contract
//!
//! All three backends must produce **identical results for every input**,
//! including hostile ones — any mask density, widths 1–16, spans crossing
//! unit boundaries, duplicate-heavy and fully-divergent warps, and
//! addresses adjacent to `u64::MAX`. To make the last case well-defined,
//! every backend computes a lane's covered span as
//! `addr >> shift ..= addr.saturating_add(width - 1) >> shift`: the old
//! scalar code's unchecked `addr + width - 1` overflowed (debug panic,
//! release wrap) on inputs no real kernel produces but a replayed hostile
//! trace could. Saturation keeps the span non-empty and ordered for any
//! address, and all backends share the definition, so the differential
//! suite (`tests/lane_engine.rs`) can pin scalar ≡ swar ≡ simd over
//! random and adversarial warps with zero drift.
//!
//! Because `sim/pricing.rs` and the live memory models both route through
//! these kernels, the replay engine and the farm sweeps inherit whatever
//! backend wins — one dispatch decision accelerates the live simulator,
//! `trace_report`, `whatif`, and `farm` simultaneously (DESIGN.md §14).
//!
//! Alignment note: `WarpAddrs` stays a plain `[u64; 32]` (8-byte aligned).
//! The AVX2 path uses unaligned loads, which cost nothing on any AVX2-era
//! part, so every existing producer — stack-built address vectors, the
//! trace arena's 32-stride slices — feeds the engine zero-copy.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::spec::WARP_SIZE;
use crate::warp::{LaneMask, WarpAddrs};

/// Units representable by the stack bitmap tier: 16384 bits = 2 KiB.
/// Large enough for any block-local space (48 KiB of shared memory is
/// 12288 four-byte bank words) and any coalesced global pattern.
pub(crate) const BITMAP_UNITS: u64 = 16384;

/// Worst-case distinct units for the wide-scatter linear fallback:
/// 32 lanes, at most 16 bytes per lane, over units as small as one byte,
/// misaligned — `32 * (16 / 1 + 1)`.
pub(crate) const MAX_UNITS: usize = WARP_SIZE * 17;

/// One lane-engine implementation. See the module docs for what each
/// backend is and when it is eligible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The original sparse-iterator scalar loops (the reference).
    Scalar,
    /// Portable branchless/u64-packed implementation.
    Swar,
    /// x86_64 AVX2 intrinsics; requires runtime AVX2 detection.
    Simd,
}

impl Backend {
    /// Stable lowercase name: what `KCONV_LANES` accepts and what the
    /// bench JSON records.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Swar => "swar",
            Backend::Simd => "simd",
        }
    }

    /// The backends that can actually run on this host, in dispatch-
    /// preference order (`simd` is absent when AVX2 is not detected).
    pub fn available() -> Vec<Backend> {
        let mut v = vec![Backend::Scalar, Backend::Swar];
        if simd_available() {
            v.push(Backend::Simd);
        }
        v
    }
}

/// True when the AVX2 lane path can run on this host.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Cached dispatch decision: 0 = unresolved, else `Backend` + 1.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn encode(b: Backend) -> u8 {
    match b {
        Backend::Scalar => 1,
        Backend::Swar => 2,
        Backend::Simd => 3,
    }
}

fn decode(v: u8) -> Option<Backend> {
    match v {
        1 => Some(Backend::Scalar),
        2 => Some(Backend::Swar),
        3 => Some(Backend::Simd),
        _ => None,
    }
}

/// `simd` only when it can actually run; otherwise the portable fallback.
fn clamp_available(b: Backend) -> Backend {
    if b == Backend::Simd && !simd_available() {
        Backend::Swar
    } else {
        b
    }
}

/// The `auto` choice: the fastest backend this host supports.
fn auto_backend() -> Backend {
    clamp_available(Backend::Simd)
}

/// Resolves the `KCONV_LANES` override (see the module docs). Follows the
/// `KCONV_THREADS` convention of trimming and lower-casing nothing —
/// values are exact — but unlike a thread count, a typo here would change
/// what a bench silently measures, so unknown values warn once on stderr
/// and fall back to `auto`.
fn resolve() -> Backend {
    match std::env::var("KCONV_LANES").ok().as_deref().map(str::trim) {
        Some("scalar") => Backend::Scalar,
        Some("swar") => Backend::Swar,
        Some("simd") => clamp_available(Backend::Simd),
        None | Some("auto") | Some("") => auto_backend(),
        Some(other) => {
            eprintln!("kconv: unknown KCONV_LANES value {other:?}; using auto");
            auto_backend()
        }
    }
}

/// The backend every dispatching kernel in this module currently uses.
/// Resolved once from `KCONV_LANES` / CPU detection and cached; see
/// [`force`] for re-pointing it.
#[inline]
pub fn active() -> Backend {
    if let Some(b) = decode(ACTIVE.load(Ordering::Relaxed)) {
        return b;
    }
    let b = resolve();
    ACTIVE.store(encode(b), Ordering::Relaxed);
    b
}

/// Re-points the cached dispatch at `backend` (clamped to what the host
/// supports) and returns the backend actually installed. Every counter is
/// bit-identical across backends by contract, so this is safe to call at
/// any time; it exists for the A/B benches and the differential suite,
/// which exercise all backends inside one process.
pub fn force(backend: Backend) -> Backend {
    let b = clamp_available(backend);
    ACTIVE.store(encode(b), Ordering::Relaxed);
    b
}

/// Per-warp word classification for the shared-memory bank model: the
/// active lanes' minimum and maximum bank-word index, and whether every
/// active lane's span fits a single word (the conflict-count fast-path
/// predicate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordSpan {
    /// Minimum word index over active lanes.
    pub lo: u64,
    /// Maximum word index covered by any active lane.
    pub hi: u64,
    /// Whether every active lane's `[addr, addr + width)` span lies in
    /// exactly one word.
    pub single: bool,
}

/// Distinct-unit occupancy bitmap for a warp whose unit span fits 128
/// units, anchored at the warp's minimum covered unit (see
/// [`occupancy`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Occupancy {
    /// The warp's minimum covered unit index — bit 0 of `words[0]`.
    pub lo: u64,
    /// One bit per covered unit in `lo..lo + 128`, low bits first.
    pub words: [u64; 2],
}

/// Minimum and maximum `unit`-aligned indices covered by the active
/// lanes' `[addr, addr.saturating_add(width - 1)]` spans, or `None` for
/// an empty mask. `unit` must be a power of two.
#[inline]
pub fn unit_bounds(addrs: &WarpAddrs, width: u64, mask: LaneMask, unit: u64) -> Option<(u64, u64)> {
    unit_bounds_on(active(), addrs, width, mask, unit)
}

/// [`unit_bounds`] on an explicit backend (`Simd` degrades to `Swar` when
/// AVX2 is unavailable, like the dispatcher would).
pub fn unit_bounds_on(
    backend: Backend,
    addrs: &WarpAddrs,
    width: u64,
    mask: LaneMask,
    unit: u64,
) -> Option<(u64, u64)> {
    debug_assert!(unit.is_power_of_two());
    debug_assert!(width >= 1);
    match clamp_available(backend) {
        Backend::Scalar => scalar::unit_bounds(addrs, width, mask, unit),
        Backend::Swar => swar::unit_bounds(addrs, width, mask, unit),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamp_available` returned `Simd`, so AVX2 was detected
        // at runtime on this host.
        Backend::Simd => unsafe { simd::unit_bounds(addrs, width, mask, unit) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Simd => unreachable!("clamp_available never yields Simd off x86_64"),
    }
}

/// Number of distinct `unit`-aligned indices covered by the active lanes'
/// spans — the transaction count for global memory, the distinct-address
/// count for constant memory. Order-insensitive, so fully vectorizable;
/// order-sensitive consumers (the read-only cache's FIFO) use
/// [`super::dedup::for_each_unit`] instead. `unit` must be a power of two.
#[inline]
pub fn distinct_units(addrs: &WarpAddrs, width: u64, mask: LaneMask, unit: u64) -> u64 {
    distinct_units_on(active(), addrs, width, mask, unit)
}

/// [`distinct_units`] on an explicit backend.
pub fn distinct_units_on(
    backend: Backend,
    addrs: &WarpAddrs,
    width: u64,
    mask: LaneMask,
    unit: u64,
) -> u64 {
    debug_assert!(unit.is_power_of_two());
    debug_assert!(width >= 1);
    match clamp_available(backend) {
        Backend::Scalar => scalar::distinct_units(addrs, width, mask, unit),
        Backend::Swar => swar::distinct_units(addrs, width, mask, unit),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamp_available` returned `Simd`, so AVX2 was detected
        // at runtime on this host.
        Backend::Simd => unsafe { simd::distinct_units(addrs, width, mask, unit) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Simd => unreachable!("clamp_available never yields Simd off x86_64"),
    }
}

/// Distinct-unit occupancy bitmap for the bank-model fast-path shape:
/// `Some` exactly when the mask is non-empty, **every active lane's span
/// lies in a single unit**, and the warp's unit range fits the 128-bit
/// bitmap. One fused kernel call both *proves* the shape (the same
/// predicate as [`WordSpan::single`]) and hands back the distinct units
/// themselves, anchored at the warp minimum — so the caller walks only
/// the set bits (a coalesced float warp touches 4–8 distinct words, not
/// 32), and the set-bit population equals [`distinct_units`]. `None`
/// means "take the general visiting path". `unit` must be a power of
/// two.
#[inline]
pub fn occupancy(addrs: &WarpAddrs, width: u64, mask: LaneMask, unit: u64) -> Option<Occupancy> {
    occupancy_on(active(), addrs, width, mask, unit)
}

/// [`occupancy`] on an explicit backend.
pub fn occupancy_on(
    backend: Backend,
    addrs: &WarpAddrs,
    width: u64,
    mask: LaneMask,
    unit: u64,
) -> Option<Occupancy> {
    debug_assert!(unit.is_power_of_two());
    debug_assert!(width >= 1);
    match clamp_available(backend) {
        Backend::Scalar => scalar::occupancy(addrs, width, mask, unit),
        Backend::Swar => swar::occupancy(addrs, width, mask, unit),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamp_available` returned `Simd`, so AVX2 was detected
        // at runtime on this host.
        Backend::Simd => unsafe { simd::occupancy(addrs, width, mask, unit) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Simd => unreachable!("clamp_available never yields Simd off x86_64"),
    }
}

/// Word-span classification for the bank model (see [`WordSpan`]), or
/// `None` for an empty mask. `unit` (the bank width) must be a power of
/// two.
#[inline]
pub fn word_span(addrs: &WarpAddrs, width: u64, mask: LaneMask, unit: u64) -> Option<WordSpan> {
    word_span_on(active(), addrs, width, mask, unit)
}

/// [`word_span`] on an explicit backend.
pub fn word_span_on(
    backend: Backend,
    addrs: &WarpAddrs,
    width: u64,
    mask: LaneMask,
    unit: u64,
) -> Option<WordSpan> {
    debug_assert!(unit.is_power_of_two());
    debug_assert!(width >= 1);
    match clamp_available(backend) {
        Backend::Scalar => scalar::word_span(addrs, width, mask, unit),
        Backend::Swar => swar::word_span(addrs, width, mask, unit),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamp_available` returned `Simd`, so AVX2 was detected
        // at runtime on this host.
        Backend::Simd => unsafe { simd::word_span(addrs, width, mask, unit) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Simd => unreachable!("clamp_available never yields Simd off x86_64"),
    }
}

/// Maximum over active lanes of `addr.saturating_add(width)` — the
/// warp-level bounds predicate behind the check-free copy loops (a lane
/// whose address would wrap saturates and correctly fails any
/// `<= limit` test). Returns 0 for an empty mask.
#[inline]
pub fn max_end(addrs: &WarpAddrs, width: u64, mask: LaneMask) -> u64 {
    max_end_on(active(), addrs, width, mask)
}

/// [`max_end`] on an explicit backend.
pub fn max_end_on(backend: Backend, addrs: &WarpAddrs, width: u64, mask: LaneMask) -> u64 {
    match clamp_available(backend) {
        Backend::Scalar => scalar::max_end(addrs, width, mask),
        Backend::Swar => swar::max_end(addrs, width, mask),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamp_available` returned `Simd`, so AVX2 was detected
        // at runtime on this host.
        Backend::Simd => unsafe { simd::max_end(addrs, width, mask) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Simd => unreachable!("clamp_available never yields Simd off x86_64"),
    }
}

/// Expands a [`LaneMask`] into one word per lane: `!0` for an active
/// lane, `0` for an inactive one — the blend masks the branchless
/// backends use in place of sparse bit iteration.
#[inline]
pub fn expand_mask(mask: LaneMask) -> [u64; WARP_SIZE] {
    expand_mask_on(active(), mask)
}

/// [`expand_mask`] on an explicit backend.
pub fn expand_mask_on(backend: Backend, mask: LaneMask) -> [u64; WARP_SIZE] {
    match clamp_available(backend) {
        Backend::Scalar => scalar::expand_mask(mask),
        Backend::Swar => swar::expand_mask(mask),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamp_available` returned `Simd`, so AVX2 was detected
        // at runtime on this host.
        Backend::Simd => unsafe { simd::expand_mask(mask) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Simd => unreachable!("clamp_available never yields Simd off x86_64"),
    }
}

/// A lane's covered unit span under the engine's saturating semantics.
#[inline]
fn lane_span(a: u64, width: u64, shift: u32) -> (u64, u64) {
    (a >> shift, a.saturating_add(width - 1) >> shift)
}

/// Shared finishing pass for the branchless backends: given every lane's
/// absolute `[first, last]` unit span (garbage in inactive lanes) and the
/// active bounds, count the distinct covered units.
fn count_distinct(
    firsts: &[u64; WARP_SIZE],
    lasts: &[u64; WARP_SIZE],
    mask: LaneMask,
    lo: u64,
    hi: u64,
) -> u64 {
    let span = hi - lo;
    if span < 128 {
        // Two registers of unit-occupancy bits: each lane contributes one
        // shifted range mask, the popcount is the distinct count. This is
        // the SWAR core — no per-unit test-and-set at all.
        let mut seen: u128 = 0;
        for lane in mask.iter() {
            let first = firsts[lane] - lo;
            let len = lasts[lane] - firsts[lane]; // <= span < 128
            seen |= (u128::MAX >> (127 - len)) << first;
        }
        u64::from(seen.count_ones())
    } else if span < BITMAP_UNITS {
        // Stack bitmap, filled a word-range at a time (not bit-by-bit).
        let mut seen = [0u64; (BITMAP_UNITS / 64) as usize];
        for lane in mask.iter() {
            let first = (firsts[lane] - lo) as usize;
            let last = (lasts[lane] - lo) as usize;
            let (w0, w1) = (first / 64, last / 64);
            if w0 == w1 {
                seen[w0] |= (!0u64 >> (63 - (last - first))) << (first % 64);
            } else {
                seen[w0] |= !0u64 << (first % 64);
                for w in &mut seen[w0 + 1..w1] {
                    *w = !0;
                }
                seen[w1] |= !0u64 >> (63 - last % 64);
            }
        }
        seen.iter().map(|w| u64::from(w.count_ones())).sum()
    } else {
        // Pathological scatter: the original linear-scan dedup, in lane
        // order (identical count by definition of "distinct").
        let mut units = [u64::MAX; MAX_UNITS];
        let mut n = 0usize;
        for lane in mask.iter() {
            for u in firsts[lane]..=lasts[lane] {
                if !units[..n].contains(&u) {
                    units[n] = u;
                    n += 1;
                }
            }
        }
        n as u64
    }
}

/// The reference backend: the sparse-iterator loops the crate shipped
/// with, kept as the semantics oracle for the differential suite.
mod scalar {
    use super::*;

    pub(super) fn unit_bounds(
        addrs: &WarpAddrs,
        width: u64,
        mask: LaneMask,
        unit: u64,
    ) -> Option<(u64, u64)> {
        if mask.is_empty() {
            return None;
        }
        let shift = unit.trailing_zeros();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for lane in mask.iter() {
            let (first, last) = lane_span(addrs[lane], width, shift);
            lo = lo.min(first);
            hi = hi.max(last);
        }
        Some((lo, hi))
    }

    pub(super) fn distinct_units(addrs: &WarpAddrs, width: u64, mask: LaneMask, unit: u64) -> u64 {
        let Some((lo, hi)) = unit_bounds(addrs, width, mask, unit) else {
            return 0;
        };
        let shift = unit.trailing_zeros();
        let mut count = 0u64;
        if hi - lo < 128 {
            let mut seen = [0u64; 2];
            for lane in mask.iter() {
                let (first, last) = lane_span(addrs[lane], width, shift);
                for u in first..=last {
                    let idx = (u - lo) as usize;
                    let bit = 1u64 << (idx % 64);
                    let word = &mut seen[idx / 64];
                    count += u64::from(*word & bit == 0);
                    *word |= bit;
                }
            }
        } else if hi - lo < BITMAP_UNITS {
            let mut seen = [0u64; (BITMAP_UNITS / 64) as usize];
            for lane in mask.iter() {
                let (first, last) = lane_span(addrs[lane], width, shift);
                for u in first..=last {
                    let idx = (u - lo) as usize;
                    let bit = 1u64 << (idx % 64);
                    let word = &mut seen[idx / 64];
                    count += u64::from(*word & bit == 0);
                    *word |= bit;
                }
            }
        } else {
            let mut units = [u64::MAX; MAX_UNITS];
            let mut n = 0usize;
            for lane in mask.iter() {
                let (first, last) = lane_span(addrs[lane], width, shift);
                for u in first..=last {
                    if !units[..n].contains(&u) {
                        units[n] = u;
                        n += 1;
                    }
                }
            }
            count = n as u64;
        }
        count
    }

    pub(super) fn occupancy(
        addrs: &WarpAddrs,
        width: u64,
        mask: LaneMask,
        unit: u64,
    ) -> Option<Occupancy> {
        if mask.is_empty() {
            return None;
        }
        let shift = unit.trailing_zeros();
        let mut firsts = [0u64; WARP_SIZE];
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let mut single = true;
        {
            let mut classify = |lane: usize| {
                let (first, last) = lane_span(addrs[lane], width, shift);
                single &= first == last;
                firsts[lane] = first;
                lo = lo.min(first);
                hi = hi.max(last);
            };
            // The full-mask specialization mirrors the pre-engine fast
            // path this backend preserves (see DESIGN.md §9 on the sparse
            // iterator's serial dependency chain).
            if mask.is_all() {
                for lane in 0..WARP_SIZE {
                    classify(lane);
                }
            } else {
                for lane in mask.iter() {
                    classify(lane);
                }
            }
        }
        if !single || hi - lo >= 128 {
            return None;
        }
        let mut words = [0u64; 2];
        let mut set_bit = |lane: usize| {
            let idx = (firsts[lane] - lo) as usize;
            words[idx / 64] |= 1u64 << (idx % 64);
        };
        if mask.is_all() {
            for lane in 0..WARP_SIZE {
                set_bit(lane);
            }
        } else {
            for lane in mask.iter() {
                set_bit(lane);
            }
        }
        Some(Occupancy { lo, words })
    }

    pub(super) fn word_span(
        addrs: &WarpAddrs,
        width: u64,
        mask: LaneMask,
        unit: u64,
    ) -> Option<WordSpan> {
        if mask.is_empty() {
            return None;
        }
        let shift = unit.trailing_zeros();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let mut single = true;
        let mut collect = |a: u64| {
            let (first, last) = lane_span(a, width, shift);
            single &= first == last;
            lo = lo.min(first);
            hi = hi.max(last);
        };
        if mask.is_all() {
            for &a in addrs.iter() {
                collect(a);
            }
        } else {
            for lane in mask.iter() {
                collect(addrs[lane]);
            }
        }
        Some(WordSpan { lo, hi, single })
    }

    pub(super) fn max_end(addrs: &WarpAddrs, width: u64, mask: LaneMask) -> u64 {
        let mut max_end = 0u64;
        if mask.is_all() {
            for &a in addrs.iter() {
                max_end = max_end.max(a.saturating_add(width));
            }
        } else {
            for lane in mask.iter() {
                max_end = max_end.max(addrs[lane].saturating_add(width));
            }
        }
        max_end
    }

    pub(super) fn expand_mask(mask: LaneMask) -> [u64; WARP_SIZE] {
        std::array::from_fn(|lane| if mask.is_active(lane) { !0 } else { 0 })
    }
}

/// Portable u64-packed backend. The differentiator is the *counting*
/// strategy: instead of one test-and-set (plus a first-visit branch) per
/// covered unit, each lane contributes one shifted **range mask** to a
/// packed occupancy word, and the distinct count is a single popcount at
/// the end — 64 units of bitmap per register operation, no per-unit
/// branches at all. The classification passes (bounds, word spans, ends)
/// are branch-free folds over the active lanes; `multi |= last - first`
/// replaces the boolean `single &=` chain so the whole predicate is one
/// OR-accumulator compare.
mod swar {
    use super::*;

    pub(super) fn unit_bounds(
        addrs: &WarpAddrs,
        width: u64,
        mask: LaneMask,
        unit: u64,
    ) -> Option<(u64, u64)> {
        if mask.is_empty() {
            return None;
        }
        let shift = unit.trailing_zeros();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        if mask.is_all() {
            for &a in addrs.iter() {
                let (first, last) = lane_span(a, width, shift);
                lo = lo.min(first);
                hi = hi.max(last);
            }
        } else {
            for lane in mask.iter() {
                let (first, last) = lane_span(addrs[lane], width, shift);
                lo = lo.min(first);
                hi = hi.max(last);
            }
        }
        Some((lo, hi))
    }

    pub(super) fn distinct_units(addrs: &WarpAddrs, width: u64, mask: LaneMask, unit: u64) -> u64 {
        if mask.is_empty() {
            return 0;
        }
        let shift = unit.trailing_zeros();
        // One classification pass: per-lane span, warp bounds. The spans
        // are stored so the occupancy pass below never recomputes
        // `lane_span` — the scalar reference's two passes each pay for the
        // shift/saturating-add math, this backend pays once.
        let mut firsts = [0u64; WARP_SIZE];
        let mut lens = [0u64; WARP_SIZE];
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        {
            let mut classify = |lane: usize| {
                let (first, last) = lane_span(addrs[lane], width, shift);
                firsts[lane] = first;
                lens[lane] = last - first;
                lo = lo.min(first);
                hi = hi.max(last);
            };
            if mask.is_all() {
                for lane in 0..WARP_SIZE {
                    classify(lane);
                }
            } else {
                for lane in mask.iter() {
                    classify(lane);
                }
            }
        }
        if hi - lo < 64 {
            // The common case: the warp's whole unit range fits one
            // occupancy word (a coalesced access spans a handful of units,
            // a full warp of float2 bank words spans 64 — just over, but
            // caught by the u128 tier below). One OR per lane, one
            // popcount total; four independent accumulators keep the OR
            // chain out of the loop's critical path.
            let range_mask = |lane: usize| (!0u64 >> (63 - lens[lane])) << (firsts[lane] - lo);
            let seen = if mask.is_all() {
                let mut acc = [0u64; 4];
                for i in 0..WARP_SIZE / 4 {
                    for (j, slot) in acc.iter_mut().enumerate() {
                        *slot |= range_mask(i * 4 + j);
                    }
                }
                (acc[0] | acc[1]) | (acc[2] | acc[3])
            } else {
                let mut seen = 0u64;
                for lane in mask.iter() {
                    seen |= range_mask(lane);
                }
                seen
            };
            u64::from(seen.count_ones())
        } else if hi - lo < 128 {
            let mut seen: u128 = 0;
            for lane in mask.iter() {
                seen |= (u128::MAX >> (127 - lens[lane])) << (firsts[lane] - lo);
            }
            u64::from(seen.count_ones())
        } else {
            let mut lasts = [0u64; WARP_SIZE];
            for lane in mask.iter() {
                lasts[lane] = firsts[lane] + lens[lane];
            }
            count_distinct(&firsts, &lasts, mask, lo, hi)
        }
    }

    pub(super) fn occupancy(
        addrs: &WarpAddrs,
        width: u64,
        mask: LaneMask,
        unit: u64,
    ) -> Option<Occupancy> {
        if mask.is_empty() {
            return None;
        }
        let shift = unit.trailing_zeros();
        // One classification pass proves the fast-path shape (single-unit
        // lanes, narrow span) and caches the per-lane units; the branch-
        // free `multi |=` accumulator replaces a boolean chain, exactly as
        // in `word_span`.
        let mut firsts = [0u64; WARP_SIZE];
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let mut multi = 0u64;
        {
            let mut classify = |lane: usize| {
                let (first, last) = lane_span(addrs[lane], width, shift);
                firsts[lane] = first;
                lo = lo.min(first);
                hi = hi.max(last);
                multi |= last - first;
            };
            if mask.is_all() {
                for lane in 0..WARP_SIZE {
                    classify(lane);
                }
            } else {
                for lane in mask.iter() {
                    classify(lane);
                }
            }
        }
        if multi != 0 || hi - lo >= 128 {
            return None;
        }
        if hi - lo < 64 {
            // Narrow tier: one shifted bit per lane into a single packed
            // word, four independent OR accumulators for ILP.
            let bit = |lane: usize| 1u64 << (firsts[lane] - lo);
            let seen = if mask.is_all() {
                let mut acc = [0u64; 4];
                for i in 0..WARP_SIZE / 4 {
                    for (j, slot) in acc.iter_mut().enumerate() {
                        *slot |= bit(i * 4 + j);
                    }
                }
                (acc[0] | acc[1]) | (acc[2] | acc[3])
            } else {
                let mut seen = 0u64;
                for lane in mask.iter() {
                    seen |= bit(lane);
                }
                seen
            };
            return Some(Occupancy {
                lo,
                words: [seen, 0],
            });
        }
        let mut words = [0u64; 2];
        let mut set_bit = |lane: usize| {
            let idx = (firsts[lane] - lo) as usize;
            words[idx / 64] |= 1u64 << (idx % 64);
        };
        if mask.is_all() {
            for lane in 0..WARP_SIZE {
                set_bit(lane);
            }
        } else {
            for lane in mask.iter() {
                set_bit(lane);
            }
        }
        Some(Occupancy { lo, words })
    }

    pub(super) fn word_span(
        addrs: &WarpAddrs,
        width: u64,
        mask: LaneMask,
        unit: u64,
    ) -> Option<WordSpan> {
        if mask.is_empty() {
            return None;
        }
        let shift = unit.trailing_zeros();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let mut multi = 0u64;
        let mut collect = |a: u64| {
            let (first, last) = lane_span(a, width, shift);
            lo = lo.min(first);
            hi = hi.max(last);
            multi |= last - first;
        };
        if mask.is_all() {
            for &a in addrs.iter() {
                collect(a);
            }
        } else {
            for lane in mask.iter() {
                collect(addrs[lane]);
            }
        }
        Some(WordSpan {
            lo,
            hi,
            single: multi == 0,
        })
    }

    pub(super) fn max_end(addrs: &WarpAddrs, width: u64, mask: LaneMask) -> u64 {
        let mut max_end = 0u64;
        if mask.is_all() {
            for &a in addrs.iter() {
                max_end = max_end.max(a.saturating_add(width));
            }
        } else {
            for lane in mask.iter() {
                max_end = max_end.max(addrs[lane].saturating_add(width));
            }
        }
        max_end
    }

    pub(super) fn expand_mask(mask: LaneMask) -> [u64; WARP_SIZE] {
        // `(bit as u64).wrapping_neg()` is 0 or !0 with no branch.
        std::array::from_fn(|lane| u64::from(mask.0 >> lane & 1).wrapping_neg())
    }
}

/// x86_64 AVX2 backend: four 64-bit lanes per vector, eight vectors per
/// warp. Every function here carries `#[target_feature(enable = "avx2")]`
/// and is only reachable through the dispatchers above after
/// `is_x86_feature_detected!("avx2")` returned true — that runtime check
/// is the safety invariant for every intrinsic call in this module.
///
/// AVX2 has no unsigned 64-bit compare, min, or max; all of them are
/// built from the sign-flip idiom (`x ^ (1 << 63)` turns an unsigned
/// order into the signed order `_mm256_cmpgt_epi64` implements) plus
/// byte blends, and saturating addition detects wrap with the same
/// flipped compare (`a > a + w` unsigned means the add wrapped) and ORs
/// the compare's all-ones result into the sum to pin it at `u64::MAX`.
#[cfg(target_arch = "x86_64")]
mod simd {
    use super::*;
    use std::arch::x86_64::*;

    /// One `1 << lane` constant per lane, in load order for each 4-lane
    /// chunk: the mask-expansion compare needs the lane's bit in its slot.
    const LANE_BITS: [u64; WARP_SIZE] = {
        let mut bits = [0u64; WARP_SIZE];
        let mut lane = 0;
        while lane < WARP_SIZE {
            bits[lane] = 1 << lane;
            lane += 1;
        }
        bits
    };

    /// Sign-flip constant for unsigned comparisons via signed compares.
    const SIGN: i64 = i64::MIN;

    /// Unsigned `a > b` per 64-bit lane.
    ///
    /// # Safety
    ///
    /// Caller must be executing with AVX2 available (guaranteed by the
    /// dispatcher's runtime detection).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn cmpgt_epu64(a: __m256i, b: __m256i) -> __m256i {
        let s = _mm256_set1_epi64x(SIGN);
        _mm256_cmpgt_epi64(_mm256_xor_si256(a, s), _mm256_xor_si256(b, s))
    }

    /// Per-lane `a.saturating_add(w)` for a uniform addend vector `w`.
    ///
    /// # Safety
    ///
    /// AVX2 must be available (dispatcher invariant).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn saturating_add(a: __m256i, w: __m256i) -> __m256i {
        let sum = _mm256_add_epi64(a, w);
        // Wrapped lanes satisfy `a > sum` unsigned; the compare result is
        // all-ones there, so OR-ing pins them at u64::MAX.
        _mm256_or_si256(sum, cmpgt_epu64(a, sum))
    }

    /// Unsigned per-lane minimum.
    ///
    /// # Safety
    ///
    /// AVX2 must be available (dispatcher invariant).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn min_epu64(a: __m256i, b: __m256i) -> __m256i {
        // blendv picks `b` where the (per-64-bit-lane all-ones) compare
        // says `a > b`.
        _mm256_blendv_epi8(a, b, cmpgt_epu64(a, b))
    }

    /// Unsigned per-lane maximum.
    ///
    /// # Safety
    ///
    /// AVX2 must be available (dispatcher invariant).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn max_epu64(a: __m256i, b: __m256i) -> __m256i {
        _mm256_blendv_epi8(b, a, cmpgt_epu64(a, b))
    }

    /// The active-lane blend vector for one 4-lane chunk: all-ones where
    /// the mask bit is set.
    ///
    /// # Safety
    ///
    /// AVX2 must be available (dispatcher invariant); `chunk < 8`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn chunk_mask(mask: LaneMask, chunk: usize) -> __m256i {
        // SAFETY: `LANE_BITS` has 32 entries; `chunk < 8` keeps the 4-wide
        // unaligned load in bounds.
        let bits = unsafe { _mm256_loadu_si256(LANE_BITS.as_ptr().add(chunk * 4).cast()) };
        let bcast = _mm256_set1_epi64x(i64::from(mask.0));
        _mm256_cmpeq_epi64(_mm256_and_si256(bcast, bits), bits)
    }

    /// Horizontal unsigned min/max over the four u64 lanes of `v`.
    ///
    /// # Safety
    ///
    /// AVX2 must be available (dispatcher invariant).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn fold(lo_v: __m256i, hi_v: __m256i) -> (u64, u64) {
        let mut lo4 = [0u64; 4];
        let mut hi4 = [0u64; 4];
        // SAFETY: both arrays are 32 bytes; the stores are unaligned.
        unsafe {
            _mm256_storeu_si256(lo4.as_mut_ptr().cast(), lo_v);
            _mm256_storeu_si256(hi4.as_mut_ptr().cast(), hi_v);
        }
        let lo = lo4.iter().copied().fold(u64::MAX, u64::min);
        let hi = hi4.iter().copied().fold(0u64, u64::max);
        (lo, hi)
    }

    /// AVX2 classification core: masked lo/hi unit bounds and the
    /// "every active lane covers exactly one unit" predicate, with no
    /// stores — eight 4-lane rounds of shift/saturate/min/max folds.
    ///
    /// # Safety
    ///
    /// AVX2 must be available (dispatcher invariant).
    #[target_feature(enable = "avx2")]
    unsafe fn classify(
        addrs: &WarpAddrs,
        width: u64,
        mask: LaneMask,
        shift: u32,
    ) -> (u64, u64, bool) {
        let cnt = _mm_cvtsi64_si128(i64::from(shift));
        let w1 = _mm256_set1_epi64x((width - 1) as i64);
        let ones = _mm256_set1_epi64x(-1);
        let mut lo_v = ones;
        let mut hi_v = _mm256_setzero_si256();
        let mut multi_v = _mm256_setzero_si256();
        if mask.is_all() {
            // Full warp — the dominant shape by far: no lane blending at
            // all, eight pure shift/saturate/fold rounds.
            for chunk in 0..WARP_SIZE / 4 {
                // SAFETY: `addrs` has 32 u64s; `chunk < 8` keeps the
                // 4-wide unaligned load in bounds. `WarpAddrs` is only
                // 8-byte aligned, hence loadu.
                let a = unsafe { _mm256_loadu_si256(addrs.as_ptr().add(chunk * 4).cast()) };
                let first = _mm256_srl_epi64(a, cnt);
                let last = _mm256_srl_epi64(saturating_add(a, w1), cnt);
                lo_v = min_epu64(lo_v, first);
                hi_v = max_epu64(hi_v, last);
                multi_v = _mm256_or_si256(multi_v, _mm256_sub_epi64(last, first));
            }
        } else {
            for chunk in 0..WARP_SIZE / 4 {
                // SAFETY: as above.
                let a = unsafe { _mm256_loadu_si256(addrs.as_ptr().add(chunk * 4).cast()) };
                let first = _mm256_srl_epi64(a, cnt);
                let last = _mm256_srl_epi64(saturating_add(a, w1), cnt);
                let active = chunk_mask(mask, chunk);
                // Inactive lanes blend to the fold identities (MAX for
                // the min, 0 for the max) and contribute no span bits.
                lo_v = min_epu64(
                    lo_v,
                    _mm256_or_si256(first, _mm256_andnot_si256(active, ones)),
                );
                hi_v = max_epu64(hi_v, _mm256_and_si256(last, active));
                multi_v = _mm256_or_si256(
                    multi_v,
                    _mm256_and_si256(_mm256_sub_epi64(last, first), active),
                );
            }
        }
        let (lo, hi) = fold(lo_v, hi_v);
        let single = _mm256_testz_si256(multi_v, multi_v) == 1;
        (lo, hi, single)
    }

    /// # Safety
    ///
    /// AVX2 must be available (dispatcher invariant).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn unit_bounds(
        addrs: &WarpAddrs,
        width: u64,
        mask: LaneMask,
        unit: u64,
    ) -> Option<(u64, u64)> {
        if mask.is_empty() {
            return None;
        }
        let (lo, hi, _) = classify(addrs, width, mask, unit.trailing_zeros());
        Some((lo, hi))
    }

    /// # Safety
    ///
    /// AVX2 must be available (dispatcher invariant).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn distinct_units(
        addrs: &WarpAddrs,
        width: u64,
        mask: LaneMask,
        unit: u64,
    ) -> u64 {
        if mask.is_empty() {
            return 0;
        }
        let shift = unit.trailing_zeros();
        let (lo, hi, _) = classify(addrs, width, mask, shift);
        if hi - lo < 64 {
            // Fully vectorized occupancy: each lane's range mask is
            // `(!0 >> (63 - len)) << (first - lo)`, both shifts computed
            // per lane with AVX2 variable shifts. Shift counts >= 64
            // yield 0 by definition of sllv/srlv, so inactive lanes
            // (whose garbage `len`/`first` wrap to huge counts) vanish
            // even before the active-mask AND.
            let cnt = _mm_cvtsi64_si128(i64::from(shift));
            let w1 = _mm256_set1_epi64x((width - 1) as i64);
            let ones = _mm256_set1_epi64x(-1);
            let lo_v = _mm256_set1_epi64x(lo as i64);
            let c63 = _mm256_set1_epi64x(63);
            let mut seen_v = _mm256_setzero_si256();
            if mask.is_all() {
                for chunk in 0..WARP_SIZE / 4 {
                    // SAFETY: `addrs` has 32 u64s; `chunk < 8` keeps the
                    // 4-wide unaligned load in bounds.
                    let a = unsafe { _mm256_loadu_si256(addrs.as_ptr().add(chunk * 4).cast()) };
                    let first = _mm256_srl_epi64(a, cnt);
                    let last = _mm256_srl_epi64(saturating_add(a, w1), cnt);
                    let len = _mm256_sub_epi64(last, first);
                    let range = _mm256_sllv_epi64(
                        _mm256_srlv_epi64(ones, _mm256_sub_epi64(c63, len)),
                        _mm256_sub_epi64(first, lo_v),
                    );
                    seen_v = _mm256_or_si256(seen_v, range);
                }
            } else {
                for chunk in 0..WARP_SIZE / 4 {
                    // SAFETY: as above.
                    let a = unsafe { _mm256_loadu_si256(addrs.as_ptr().add(chunk * 4).cast()) };
                    let first = _mm256_srl_epi64(a, cnt);
                    let last = _mm256_srl_epi64(saturating_add(a, w1), cnt);
                    let len = _mm256_sub_epi64(last, first);
                    let range = _mm256_sllv_epi64(
                        _mm256_srlv_epi64(ones, _mm256_sub_epi64(c63, len)),
                        _mm256_sub_epi64(first, lo_v),
                    );
                    seen_v =
                        _mm256_or_si256(seen_v, _mm256_and_si256(range, chunk_mask(mask, chunk)));
                }
            }
            let folded = _mm_or_si128(
                _mm256_castsi256_si128(seen_v),
                _mm256_extracti128_si256(seen_v, 1),
            );
            let seen = (_mm_cvtsi128_si64(folded) as u64) | (_mm_extract_epi64(folded, 1) as u64);
            u64::from(seen.count_ones())
        } else {
            // Wider spans: store the spans once and finish with the shared
            // packed-bitmap counters.
            let cnt = _mm_cvtsi64_si128(i64::from(shift));
            let w1 = _mm256_set1_epi64x((width - 1) as i64);
            let mut firsts = [0u64; WARP_SIZE];
            let mut lasts = [0u64; WARP_SIZE];
            for chunk in 0..WARP_SIZE / 4 {
                // SAFETY: `addrs`, `firsts` and `lasts` all have 32 u64s;
                // `chunk < 8` keeps the 4-wide unaligned accesses in
                // bounds.
                unsafe {
                    let a = _mm256_loadu_si256(addrs.as_ptr().add(chunk * 4).cast());
                    let first = _mm256_srl_epi64(a, cnt);
                    let last = _mm256_srl_epi64(saturating_add(a, w1), cnt);
                    _mm256_storeu_si256(firsts.as_mut_ptr().add(chunk * 4).cast(), first);
                    _mm256_storeu_si256(lasts.as_mut_ptr().add(chunk * 4).cast(), last);
                }
            }
            count_distinct(&firsts, &lasts, mask, lo, hi)
        }
    }

    /// # Safety
    ///
    /// AVX2 must be available (dispatcher invariant).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn occupancy(
        addrs: &WarpAddrs,
        width: u64,
        mask: LaneMask,
        unit: u64,
    ) -> Option<Occupancy> {
        if mask.is_empty() {
            return None;
        }
        let shift = unit.trailing_zeros();
        let (lo, hi, single) = classify(addrs, width, mask, shift);
        if !single || hi - lo >= 128 {
            return None;
        }
        let cnt = _mm_cvtsi64_si128(i64::from(shift));
        if hi - lo < 64 {
            // Proven single-unit lanes, so each lane contributes exactly
            // one bit: `1 << (first - lo)`, with both the word index and
            // the shift computed per lane by AVX2 variable shifts. Shift
            // counts >= 64 yield 0 by definition of sllv, so inactive
            // lanes whose garbage `first` lands far away vanish even
            // before the active-mask AND.
            let one = _mm256_set1_epi64x(1);
            let lo_v = _mm256_set1_epi64x(lo as i64);
            let mut seen_v = _mm256_setzero_si256();
            if mask.is_all() {
                for chunk in 0..WARP_SIZE / 4 {
                    // SAFETY: `addrs` has 32 u64s; `chunk < 8` keeps the
                    // 4-wide unaligned load in bounds.
                    let a = unsafe { _mm256_loadu_si256(addrs.as_ptr().add(chunk * 4).cast()) };
                    let first = _mm256_srl_epi64(a, cnt);
                    let bit = _mm256_sllv_epi64(one, _mm256_sub_epi64(first, lo_v));
                    seen_v = _mm256_or_si256(seen_v, bit);
                }
            } else {
                for chunk in 0..WARP_SIZE / 4 {
                    // SAFETY: as above.
                    let a = unsafe { _mm256_loadu_si256(addrs.as_ptr().add(chunk * 4).cast()) };
                    let first = _mm256_srl_epi64(a, cnt);
                    let bit = _mm256_sllv_epi64(one, _mm256_sub_epi64(first, lo_v));
                    seen_v =
                        _mm256_or_si256(seen_v, _mm256_and_si256(bit, chunk_mask(mask, chunk)));
                }
            }
            let folded = _mm_or_si128(
                _mm256_castsi256_si128(seen_v),
                _mm256_extracti128_si256(seen_v, 1),
            );
            let seen = (_mm_cvtsi128_si64(folded) as u64) | (_mm_extract_epi64(folded, 1) as u64);
            return Some(Occupancy {
                lo,
                words: [seen, 0],
            });
        }
        // Two-word tier (rare: a bank-word span of 64..128 units): store
        // the vector-classified units once, then a scalar bit-set pass.
        let mut firsts = [0u64; WARP_SIZE];
        for chunk in 0..WARP_SIZE / 4 {
            // SAFETY: `addrs` and `firsts` both have 32 u64s; `chunk < 8`
            // keeps the 4-wide unaligned accesses in bounds.
            unsafe {
                let a = _mm256_loadu_si256(addrs.as_ptr().add(chunk * 4).cast());
                let first = _mm256_srl_epi64(a, cnt);
                _mm256_storeu_si256(firsts.as_mut_ptr().add(chunk * 4).cast(), first);
            }
        }
        let mut words = [0u64; 2];
        for lane in mask.iter() {
            let idx = (firsts[lane] - lo) as usize;
            words[idx / 64] |= 1u64 << (idx % 64);
        }
        Some(Occupancy { lo, words })
    }

    /// # Safety
    ///
    /// AVX2 must be available (dispatcher invariant).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn word_span(
        addrs: &WarpAddrs,
        width: u64,
        mask: LaneMask,
        unit: u64,
    ) -> Option<WordSpan> {
        if mask.is_empty() {
            return None;
        }
        let (lo, hi, single) = classify(addrs, width, mask, unit.trailing_zeros());
        Some(WordSpan { lo, hi, single })
    }

    /// # Safety
    ///
    /// AVX2 must be available (dispatcher invariant).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn max_end(addrs: &WarpAddrs, width: u64, mask: LaneMask) -> u64 {
        let w = _mm256_set1_epi64x(width as i64);
        let mut hi_v = _mm256_setzero_si256();
        for chunk in 0..WARP_SIZE / 4 {
            // SAFETY: `addrs` has 32 u64s; `chunk < 8` keeps the 4-wide
            // unaligned load in bounds.
            let a = unsafe { _mm256_loadu_si256(addrs.as_ptr().add(chunk * 4).cast()) };
            let end = saturating_add(a, w);
            hi_v = max_epu64(hi_v, _mm256_and_si256(end, chunk_mask(mask, chunk)));
        }
        let (_, hi) = fold(_mm256_set1_epi64x(-1), hi_v);
        hi
    }

    /// # Safety
    ///
    /// AVX2 must be available (dispatcher invariant).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn expand_mask(mask: LaneMask) -> [u64; WARP_SIZE] {
        let mut out = [0u64; WARP_SIZE];
        for chunk in 0..WARP_SIZE / 4 {
            let m = chunk_mask(mask, chunk);
            // SAFETY: `out` has 32 u64s; `chunk < 8` keeps the 4-wide
            // unaligned store in bounds.
            unsafe { _mm256_storeu_si256(out.as_mut_ptr().add(chunk * 4).cast(), m) };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warp::{lane_addrs, lane_addrs_from, lane_addrs_uniform};

    fn backends() -> Vec<Backend> {
        Backend::available()
    }

    #[test]
    fn dispatch_clamps_simd_to_host_support() {
        let installed = force(Backend::Simd);
        if simd_available() {
            assert_eq!(installed, Backend::Simd);
        } else {
            assert_eq!(installed, Backend::Swar);
        }
        assert_eq!(force(Backend::Scalar), Backend::Scalar);
        assert_eq!(active(), Backend::Scalar);
        force(auto_backend());
    }

    #[test]
    fn backend_names_round_trip() {
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert_eq!(Backend::Swar.name(), "swar");
        assert_eq!(Backend::Simd.name(), "simd");
        assert!(Backend::available().contains(&Backend::Swar));
    }

    #[test]
    fn empty_mask_is_none_or_zero_on_every_backend() {
        let a = lane_addrs(0, 4);
        for b in backends() {
            assert_eq!(unit_bounds_on(b, &a, 4, LaneMask::NONE, 128), None);
            assert_eq!(distinct_units_on(b, &a, 4, LaneMask::NONE, 128), 0);
            assert_eq!(word_span_on(b, &a, 4, LaneMask::NONE, 8), None);
            assert_eq!(max_end_on(b, &a, 4, LaneMask::NONE), 0);
        }
    }

    #[test]
    fn coalesced_warp_counts_one_segment_on_every_backend() {
        let a = lane_addrs(0, 4);
        for b in backends() {
            assert_eq!(distinct_units_on(b, &a, 4, LaneMask::ALL, 128), 1);
            assert_eq!(distinct_units_on(b, &a, 4, LaneMask::ALL, 32), 4);
            assert_eq!(unit_bounds_on(b, &a, 4, LaneMask::ALL, 128), Some((0, 0)));
            assert_eq!(max_end_on(b, &a, 4, LaneMask::ALL), 128);
        }
    }

    #[test]
    fn word_span_flags_multi_word_lanes() {
        // float2 on 8-byte words: single. float on 8-byte words,
        // misaligned by 4: lanes straddle words.
        let aligned = lane_addrs(0, 8);
        let straddling = lane_addrs_from(|l| l as u64 * 8 + 4);
        for b in backends() {
            let s = word_span_on(b, &aligned, 8, LaneMask::ALL, 8).unwrap();
            assert!(s.single, "{b:?}");
            assert_eq!((s.lo, s.hi), (0, 31));
            let s = word_span_on(b, &straddling, 8, LaneMask::ALL, 8).unwrap();
            assert!(!s.single, "{b:?}");
        }
    }

    #[test]
    fn saturating_span_semantics_near_u64_max() {
        // A lane at u64::MAX - 2 reading 16 bytes would overflow the naive
        // `addr + width - 1`; saturation pins the span end at u64::MAX.
        let a = lane_addrs_uniform(u64::MAX - 2);
        for b in backends() {
            assert_eq!(
                unit_bounds_on(b, &a, 16, LaneMask::ALL, 128),
                Some(((u64::MAX - 2) >> 7, u64::MAX >> 7)),
                "{b:?}"
            );
            assert_eq!(distinct_units_on(b, &a, 16, LaneMask::ALL, 128), 1, "{b:?}");
            assert_eq!(max_end_on(b, &a, 16, LaneMask::ALL), u64::MAX, "{b:?}");
        }
    }

    #[test]
    fn expand_mask_matches_bits_on_every_backend() {
        for bits in [0u32, 1, 0x8000_0001, 0xAAAA_5555, u32::MAX] {
            let mask = LaneMask(bits);
            for b in backends() {
                let m = expand_mask_on(b, mask);
                for (lane, &w) in m.iter().enumerate() {
                    let want = if mask.is_active(lane) { !0 } else { 0 };
                    assert_eq!(w, want, "{b:?} lane {lane} bits {bits:#x}");
                }
            }
        }
    }

    #[test]
    fn wide_scatter_small_unit_does_not_overflow_fallback() {
        // 32 lanes * 17 units per lane (width 16, unit 1), scattered far
        // beyond the bitmap tier: exercises the MAX_UNITS fallback bound.
        let a = lane_addrs_from(|l| l as u64 * (BITMAP_UNITS + 64));
        for b in backends() {
            assert_eq!(
                distinct_units_on(b, &a, 16, LaneMask::ALL, 1),
                32 * 16,
                "{b:?}"
            );
        }
    }
}

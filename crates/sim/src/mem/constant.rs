//! Constant memory with the warp broadcast mechanism and a simple
//! constant-cache model.
//!
//! Constant memory is optimized for the case where **all lanes of a warp
//! read the same address**: the value is broadcast in a single cycle, and
//! when served from the constant cache the read is folded into the consuming
//! instruction (the common `c[bank][offset]` operand on real hardware), so a
//! fully-uniform cached read costs *zero* extra pipeline cycles here.
//! Divergent addresses serialize: a warp read of `d` distinct addresses
//! costs `d - 1` extra cycles. Cache misses are charged one line fetch of
//! global-memory traffic by the timing model.
//!
//! The paper's special-case kernel keeps its filters in constant memory and
//! is deliberately structured so that "all the threads within a warp always
//! compute convolutions using the same filter at the same time" — i.e. the
//! zero-cost path.
//!
//! Device-side warp loads flow through a per-block
//! [`CmPlane`](crate::mem::plane::CmPlane); the launch-scoped first-touch
//! line bitmap lives here so serial launches count misses inline while
//! parallel launches count the ordered union at merge time. Out-of-bounds
//! device reads raise a typed [`DeviceFault`](crate::DeviceFault) contained
//! at the block boundary; with memcheck enabled, reads of constants never
//! written by the host fault as uninitialized.

use crate::error::{Result, SimError};
use crate::fault::{self, AccessKind, FaultKind, MemSpace, Site};
use crate::mem::shadow::Shadow;

/// A bitmap over constant-cache line indices — the compact replacement for
/// the `HashSet<u64>` touched-line sets the cache model used to keep (the
/// full 64 KiB constant segment in 256-byte lines is 256 lines = four
/// words, so set/union/count are a handful of word ops).
#[derive(Debug, Clone, Default)]
pub(crate) struct LineBitmap {
    words: Vec<u64>,
}

impl LineBitmap {
    /// An empty bitmap able to hold lines `0..num_lines` without growing.
    pub(crate) fn new(num_lines: u64) -> Self {
        LineBitmap {
            words: vec![0; num_lines.div_ceil(64) as usize],
        }
    }

    /// Sets `line`, returning `true` if it was not set before (growing the
    /// bitmap if the line is beyond the sized range).
    pub(crate) fn set(&mut self, line: u64) -> bool {
        let (w, bit) = ((line / 64) as usize, 1u64 << (line % 64));
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let new = self.words[w] & bit == 0;
        self.words[w] |= bit;
        new
    }

    /// Number of set lines.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn count(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Clears every line.
    pub(crate) fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Unions `other` into `self`, returning how many of its lines were
    /// not already set — the newly-touched count.
    pub(crate) fn absorb(&mut self, other: &LineBitmap) -> u64 {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut new = 0u64;
        for (mine, &theirs) in self.words.iter_mut().zip(&other.words) {
            new += u64::from((theirs & !*mine).count_ones());
            *mine |= theirs;
        }
        new
    }
}

/// Constant memory: a small read-only (from the device) space with broadcast
/// semantics and a line-granular cache model.
#[derive(Debug)]
pub struct ConstantMemory {
    data: Vec<u8>,
    line_bytes: u64,
    touched_lines: LineBitmap,
    shadow: Option<Shadow>,
}

impl ConstantMemory {
    /// Creates a constant memory of `bytes` bytes with `line_bytes` cache
    /// lines.
    pub fn new(bytes: u64, line_bytes: u64) -> Self {
        ConstantMemory {
            data: vec![0; bytes as usize],
            line_bytes,
            touched_lines: LineBitmap::new(bytes.div_ceil(line_bytes)),
            shadow: None,
        }
    }

    /// Enables memcheck's uninitialized-read tracking. With
    /// `mark_existing`, current contents are presumed valid (conservative
    /// enable after host writes may already have happened); without it,
    /// only bytes written from now on count as initialized.
    pub fn enable_uninit_tracking(&mut self, mark_existing: bool) {
        let mut shadow = Shadow::new(self.data.len() as u64);
        if mark_existing {
            shadow.mark_all();
        }
        self.shadow = Some(shadow);
    }

    /// Disables uninitialized-read tracking and frees the shadow.
    pub fn disable_uninit_tracking(&mut self) {
        self.shadow = None;
    }

    /// Size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.data.len()
    }

    /// Cache-line size in bytes.
    pub(crate) fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Number of cache lines covering the constant segment (sizes per-block
    /// touched-line bitmaps in parallel mode).
    pub(crate) fn num_lines(&self) -> u64 {
        (self.data.len() as u64).div_ceil(self.line_bytes)
    }

    /// Host write of consecutive `f32`s starting at element `elem_offset`
    /// (models `cudaMemcpyToSymbol`; uncounted).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HostTransferOutOfBounds`] if the range does not
    /// fit in constant memory.
    pub fn write_f32s(&mut self, elem_offset: u64, values: &[f32]) -> Result<()> {
        let byte_off = elem_offset * 4;
        let byte_len = values.len() as u64 * 4;
        if byte_off + byte_len > self.data.len() as u64 {
            return Err(SimError::HostTransferOutOfBounds {
                offset: byte_off,
                len: byte_len,
                buffer: self.data.len() as u64,
            });
        }
        for (i, v) in values.iter().enumerate() {
            let p = byte_off as usize + i * 4;
            self.data[p..p + 4].copy_from_slice(&v.to_le_bytes());
        }
        if let Some(shadow) = &mut self.shadow {
            shadow.mark(byte_off, byte_len);
        }
        Ok(())
    }

    /// Resets the cache-residency model (called by the launcher at the start
    /// of each kernel so first-touch misses are attributed per launch).
    pub(crate) fn reset_cache(&mut self) {
        self.touched_lines.clear();
    }

    /// Marks `line` as cache-resident for this launch; returns `true` on
    /// first touch (a miss).
    pub(crate) fn touch_line(&mut self, line: u64) -> bool {
        self.touched_lines.set(line)
    }

    /// Merges one block's touched-line bitmap into the launch-scoped cache
    /// state, returning how many lines were newly touched — the block's
    /// miss contribution. Calling this per block in block-id order yields
    /// exactly the serial miss total (the model never evicts within a
    /// launch, so total misses = |union of per-block bitmaps|).
    pub(crate) fn absorb_lines(&mut self, lines: &LineBitmap) -> u64 {
        self.touched_lines.absorb(lines)
    }

    /// Device read of one `f32` at byte address `addr` by `lane` at `site`.
    ///
    /// An out-of-bounds read — or, under memcheck, a read of bytes the host
    /// never wrote — raises a typed [`DeviceFault`](crate::DeviceFault)
    /// contained at the block boundary.
    pub(crate) fn read_f32(&self, addr: u64, site: Site, lane: usize) -> f32 {
        let limit = self.data.len() as u64;
        if addr.checked_add(4).is_none_or(|end| end > limit) {
            fault::raise(
                FaultKind::OutOfBounds {
                    space: MemSpace::Constant,
                    access: AccessKind::Load,
                    addr,
                    width: 4,
                    limit,
                },
                site.warp,
                lane,
            );
        }
        if let Some(shadow) = &self.shadow {
            if let Some(bad) = shadow.first_unmarked(addr, 4) {
                fault::raise(
                    FaultKind::UninitializedRead {
                        space: MemSpace::Constant,
                        addr: bad,
                        width: 4,
                    },
                    site.warp,
                    lane,
                );
            }
        }
        f32::from_le_bytes(
            self.data[addr as usize..addr as usize + 4]
                .try_into()
                .unwrap(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{install_quiet_hook, FaultPayload};
    use crate::mem::plane::CmPlane;
    use crate::stats::KernelStats;
    use crate::warp::{lane_addrs, lane_addrs_uniform, LaneMask};

    fn cm() -> ConstantMemory {
        ConstantMemory::new(64 * 1024, 256)
    }

    /// Runs `f`, which must raise a device fault, and returns the payload.
    fn trap(f: impl FnOnce() + std::panic::UnwindSafe) -> FaultPayload {
        install_quiet_hook();
        let payload = std::panic::catch_unwind(f).unwrap_err();
        *payload
            .downcast::<FaultPayload>()
            .expect("expected a typed device fault")
    }

    #[test]
    fn host_write_and_uniform_read() {
        let mut m = cm();
        m.write_f32s(4, &[1.5, 2.5]).unwrap();
        let mut stats = KernelStats::default();
        let mut plane = CmPlane::Direct(&mut m);
        let out = plane.warp_ld_f32(
            &mut stats,
            Site::ZERO,
            &lane_addrs_uniform(4 * 4),
            LaneMask::ALL,
        );
        assert!(out.iter().all(|&v| v == 1.5));
        // Uniform cached read is free apart from the request count.
        assert_eq!(stats.cm_cycles, 0);
        assert_eq!(stats.cm_requests, 1);
        assert_eq!(stats.cm_misses, 1); // first touch of the line
    }

    #[test]
    fn second_touch_hits_cache() {
        let mut m = cm();
        m.write_f32s(0, &[3.0]).unwrap();
        let mut stats = KernelStats::default();
        let mut plane = CmPlane::Direct(&mut m);
        plane.warp_ld_f32(
            &mut stats,
            Site::ZERO,
            &lane_addrs_uniform(0),
            LaneMask::ALL,
        );
        plane.warp_ld_f32(
            &mut stats,
            Site::ZERO,
            &lane_addrs_uniform(0),
            LaneMask::ALL,
        );
        assert_eq!(stats.cm_misses, 1);
        assert_eq!(stats.cm_requests, 2);
    }

    #[test]
    fn divergent_read_serializes() {
        let mut m = cm();
        let vals: Vec<f32> = (0..32).map(|i| i as f32).collect();
        m.write_f32s(0, &vals).unwrap();
        let mut stats = KernelStats::default();
        let mut plane = CmPlane::Direct(&mut m);
        let out = plane.warp_ld_f32(&mut stats, Site::ZERO, &lane_addrs(0, 4), LaneMask::ALL);
        assert_eq!(out[7], 7.0);
        // 32 distinct addresses: 31 serialization cycles.
        assert_eq!(stats.cm_cycles, 31);
        // 128 bytes within one 256-byte line: one miss.
        assert_eq!(stats.cm_misses, 1);
    }

    #[test]
    fn masked_lanes_do_not_serialize() {
        let mut m = cm();
        m.write_f32s(0, &[0.0; 32]).unwrap();
        let mut stats = KernelStats::default();
        let mut plane = CmPlane::Direct(&mut m);
        plane.warp_ld_f32(
            &mut stats,
            Site::ZERO,
            &lane_addrs(0, 4),
            LaneMask::first(2),
        );
        assert_eq!(stats.cm_cycles, 1);
    }

    #[test]
    fn cache_reset_recounts_misses() {
        let mut m = cm();
        m.write_f32s(0, &[1.0]).unwrap();
        let mut stats = KernelStats::default();
        CmPlane::Direct(&mut m).warp_ld_f32(
            &mut stats,
            Site::ZERO,
            &lane_addrs_uniform(0),
            LaneMask::ALL,
        );
        m.reset_cache();
        CmPlane::Direct(&mut m).warp_ld_f32(
            &mut stats,
            Site::ZERO,
            &lane_addrs_uniform(0),
            LaneMask::ALL,
        );
        assert_eq!(stats.cm_misses, 2);
    }

    #[test]
    fn write_bounds_checked() {
        let mut m = cm();
        assert!(m.write_f32s(64 * 1024 / 4 - 1, &[0.0, 0.0]).is_err());
    }

    #[test]
    fn device_oob_raises_typed_fault() {
        let p = trap(|| {
            let mut m = ConstantMemory::new(16, 256);
            let mut stats = KernelStats::default();
            CmPlane::Direct(&mut m).warp_ld_f32(
                &mut stats,
                Site { warp: 2, phase: 0 },
                &lane_addrs_uniform(16),
                LaneMask::ALL,
            );
        });
        assert_eq!(p.warp, 2);
        assert_eq!(p.lane, 0);
        match p.kind {
            FaultKind::OutOfBounds {
                space,
                access,
                addr,
                width,
                limit,
            } => {
                assert_eq!(space, MemSpace::Constant);
                assert_eq!(access, AccessKind::Load);
                assert_eq!(addr, 16);
                assert_eq!(width, 4);
                assert_eq!(limit, 16);
            }
            other => panic!("expected OutOfBounds, got {other:?}"),
        }
    }

    #[test]
    fn uninit_read_detected_when_tracking() {
        let p = trap(|| {
            let mut m = cm();
            m.enable_uninit_tracking(false);
            m.write_f32s(0, &[1.0]).unwrap();
            let mut stats = KernelStats::default();
            // Element 1 was never written by the host.
            CmPlane::Direct(&mut m).warp_ld_f32(
                &mut stats,
                Site::ZERO,
                &lane_addrs_uniform(4),
                LaneMask::ALL,
            );
        });
        match p.kind {
            FaultKind::UninitializedRead { space, addr, .. } => {
                assert_eq!(space, MemSpace::Constant);
                assert_eq!(addr, 4);
            }
            other => panic!("expected UninitializedRead, got {other:?}"),
        }
    }

    #[test]
    fn line_bitmap_matches_hashset_reference() {
        // Differential property test: the bitmap must agree with the naive
        // HashSet model it replaced on random touch/absorb sequences.
        use crate::testrng::Xoshiro;
        use std::collections::HashSet;

        let mut rng = Xoshiro::seeded(0xB17_BA5E);
        const LINES: u64 = 256;
        let mut launch = LineBitmap::new(LINES);
        let mut launch_ref: HashSet<u64> = HashSet::new();
        for _ in 0..200 {
            // One block's touched lines, built by random touches...
            let mut block = LineBitmap::new(LINES);
            let mut block_ref: HashSet<u64> = HashSet::new();
            for _ in 0..rng.next() % 64 {
                let line = rng.next() % LINES;
                assert_eq!(block.set(line), block_ref.insert(line));
            }
            assert_eq!(block.count(), block_ref.len() as u64);
            // ...then absorbed into the launch state, like the merge loop.
            let new_ref = block_ref.difference(&launch_ref).count() as u64;
            assert_eq!(launch.absorb(&block), new_ref);
            launch_ref.extend(&block_ref);
            assert_eq!(launch.count(), launch_ref.len() as u64);
        }
        launch.clear();
        assert_eq!(launch.count(), 0);
    }

    #[test]
    fn conservative_enable_marks_existing_contents() {
        let mut m = cm();
        m.enable_uninit_tracking(true);
        let mut stats = KernelStats::default();
        // Never host-written, but conservative enable presumes it valid.
        let out = CmPlane::Direct(&mut m).warp_ld_f32(
            &mut stats,
            Site::ZERO,
            &lane_addrs_uniform(128),
            LaneMask::ALL,
        );
        assert_eq!(out[0], 0.0);
    }
}

//! Constant memory with the warp broadcast mechanism and a simple
//! constant-cache model.
//!
//! Constant memory is optimized for the case where **all lanes of a warp
//! read the same address**: the value is broadcast in a single cycle, and
//! when served from the constant cache the read is folded into the consuming
//! instruction (the common `c[bank][offset]` operand on real hardware), so a
//! fully-uniform cached read costs *zero* extra pipeline cycles here.
//! Divergent addresses serialize: a warp read of `d` distinct addresses
//! costs `d - 1` extra cycles. Cache misses are charged one line fetch of
//! global-memory traffic by the timing model.
//!
//! The paper's special-case kernel keeps its filters in constant memory and
//! is deliberately structured so that "all the threads within a warp always
//! compute convolutions using the same filter at the same time" — i.e. the
//! zero-cost path.
//!
//! Device-side warp loads flow through a per-block
//! [`CmPlane`](crate::mem::plane::CmPlane); the launch-scoped first-touch
//! line set lives here so serial launches count misses inline while
//! parallel launches count the ordered union at merge time.

use std::collections::HashSet;

use crate::error::{Result, SimError};

/// Constant memory: a small read-only (from the device) space with broadcast
/// semantics and a line-granular cache model.
#[derive(Debug)]
pub struct ConstantMemory {
    data: Vec<u8>,
    line_bytes: u64,
    touched_lines: HashSet<u64>,
}

impl ConstantMemory {
    /// Creates a constant memory of `bytes` bytes with `line_bytes` cache
    /// lines.
    pub fn new(bytes: u64, line_bytes: u64) -> Self {
        ConstantMemory {
            data: vec![0; bytes as usize],
            line_bytes,
            touched_lines: HashSet::new(),
        }
    }

    /// Size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.data.len()
    }

    /// Cache-line size in bytes.
    pub(crate) fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Host write of consecutive `f32`s starting at element `elem_offset`
    /// (models `cudaMemcpyToSymbol`; uncounted).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HostTransferOutOfBounds`] if the range does not
    /// fit in constant memory.
    pub fn write_f32s(&mut self, elem_offset: u64, values: &[f32]) -> Result<()> {
        let byte_off = elem_offset * 4;
        let byte_len = values.len() as u64 * 4;
        if byte_off + byte_len > self.data.len() as u64 {
            return Err(SimError::HostTransferOutOfBounds {
                offset: byte_off,
                len: byte_len,
                buffer: self.data.len() as u64,
            });
        }
        for (i, v) in values.iter().enumerate() {
            let p = byte_off as usize + i * 4;
            self.data[p..p + 4].copy_from_slice(&v.to_le_bytes());
        }
        Ok(())
    }

    /// Resets the cache-residency model (called by the launcher at the start
    /// of each kernel so first-touch misses are attributed per launch).
    pub(crate) fn reset_cache(&mut self) {
        self.touched_lines.clear();
    }

    /// Device read of one `f32` at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the read falls outside constant memory (a kernel bug,
    /// mirroring a device fault).
    pub(crate) fn read_f32(&self, addr: u64) -> f32 {
        assert!(
            (addr + 4) as usize <= self.data.len(),
            "constant-memory access out of bounds: addr {addr}, size {}",
            self.data.len()
        );
        f32::from_le_bytes(
            self.data[addr as usize..addr as usize + 4]
                .try_into()
                .unwrap(),
        )
    }

    /// Marks `line` as cache-resident for this launch; returns `true` on
    /// first touch (a miss).
    pub(crate) fn touch_line(&mut self, line: u64) -> bool {
        self.touched_lines.insert(line)
    }

    /// Merges one block's touched-line set into the launch-scoped cache
    /// state, returning how many lines were newly touched — the block's
    /// miss contribution. Calling this per block in block-id order yields
    /// exactly the serial miss total (the model never evicts within a
    /// launch, so total misses = |union of per-block sets|).
    pub(crate) fn absorb_lines(&mut self, lines: &HashSet<u64>) -> u64 {
        let mut new = 0u64;
        for &line in lines {
            if self.touched_lines.insert(line) {
                new += 1;
            }
        }
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::plane::CmPlane;
    use crate::stats::KernelStats;
    use crate::warp::{lane_addrs, lane_addrs_uniform, LaneMask};

    fn cm() -> ConstantMemory {
        ConstantMemory::new(64 * 1024, 256)
    }

    #[test]
    fn host_write_and_uniform_read() {
        let mut m = cm();
        m.write_f32s(4, &[1.5, 2.5]).unwrap();
        let mut stats = KernelStats::default();
        let mut plane = CmPlane::Direct(&mut m);
        let out = plane.warp_ld_f32(&mut stats, &lane_addrs_uniform(4 * 4), LaneMask::ALL);
        assert!(out.iter().all(|&v| v == 1.5));
        // Uniform cached read is free apart from the request count.
        assert_eq!(stats.cm_cycles, 0);
        assert_eq!(stats.cm_requests, 1);
        assert_eq!(stats.cm_misses, 1); // first touch of the line
    }

    #[test]
    fn second_touch_hits_cache() {
        let mut m = cm();
        m.write_f32s(0, &[3.0]).unwrap();
        let mut stats = KernelStats::default();
        let mut plane = CmPlane::Direct(&mut m);
        plane.warp_ld_f32(&mut stats, &lane_addrs_uniform(0), LaneMask::ALL);
        plane.warp_ld_f32(&mut stats, &lane_addrs_uniform(0), LaneMask::ALL);
        assert_eq!(stats.cm_misses, 1);
        assert_eq!(stats.cm_requests, 2);
    }

    #[test]
    fn divergent_read_serializes() {
        let mut m = cm();
        let vals: Vec<f32> = (0..32).map(|i| i as f32).collect();
        m.write_f32s(0, &vals).unwrap();
        let mut stats = KernelStats::default();
        let mut plane = CmPlane::Direct(&mut m);
        let out = plane.warp_ld_f32(&mut stats, &lane_addrs(0, 4), LaneMask::ALL);
        assert_eq!(out[7], 7.0);
        // 32 distinct addresses: 31 serialization cycles.
        assert_eq!(stats.cm_cycles, 31);
        // 128 bytes within one 256-byte line: one miss.
        assert_eq!(stats.cm_misses, 1);
    }

    #[test]
    fn masked_lanes_do_not_serialize() {
        let mut m = cm();
        m.write_f32s(0, &[0.0; 32]).unwrap();
        let mut stats = KernelStats::default();
        let mut plane = CmPlane::Direct(&mut m);
        plane.warp_ld_f32(&mut stats, &lane_addrs(0, 4), LaneMask::first(2));
        assert_eq!(stats.cm_cycles, 1);
    }

    #[test]
    fn cache_reset_recounts_misses() {
        let mut m = cm();
        m.write_f32s(0, &[1.0]).unwrap();
        let mut stats = KernelStats::default();
        CmPlane::Direct(&mut m).warp_ld_f32(&mut stats, &lane_addrs_uniform(0), LaneMask::ALL);
        m.reset_cache();
        CmPlane::Direct(&mut m).warp_ld_f32(&mut stats, &lane_addrs_uniform(0), LaneMask::ALL);
        assert_eq!(stats.cm_misses, 2);
    }

    #[test]
    fn write_bounds_checked() {
        let mut m = cm();
        assert!(m.write_f32s(64 * 1024 / 4 - 1, &[0.0, 0.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn device_oob_panics() {
        let mut m = ConstantMemory::new(16, 256);
        let mut stats = KernelStats::default();
        CmPlane::Direct(&mut m).warp_ld_f32(&mut stats, &lane_addrs_uniform(16), LaneMask::ALL);
    }
}

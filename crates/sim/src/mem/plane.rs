//! Per-block views of the shared device memories.
//!
//! The parallel launch path (see [`crate::Gpu::launch`]) runs many thread
//! blocks concurrently against one [`GlobalMemory`] and one
//! [`ConstantMemory`]. The types here make that safe **and** keep every
//! counter bit-identical to serial execution:
//!
//! * [`GmPlane`] — a block's access port to global memory. In serial mode
//!   it writes through (`Direct`); in parallel mode it reads the shared
//!   base and records stores into a private [`WriteJournal`] (`Journaled`)
//!   that the launcher replays into the base in block-id order after all
//!   workers join. A journaled block observes its *own* stores (paged
//!   overlay) but never another in-flight block's — the disjoint-write
//!   contract that CUDA grids already obey (blocks may not communicate
//!   through global memory within one launch without a device-wide sync,
//!   which this simulator does not provide).
//! * [`RoCache`] — the per-SM read-only (texture) cache. Its residency was
//!   always reset per block, so under parallelism it simply becomes a
//!   per-block value; counts are unchanged by construction.
//! * [`CmPlane`] — the constant-cache model. Serially, first-touch misses
//!   accumulate in a launch-scoped line bitmap; in parallel mode each block
//!   records the lines it touched and the launcher counts
//!   `|union of all bitmaps|` at merge time, which equals the serial miss
//!   count exactly because the cache model never evicts within a launch.
//!
//! Transaction/coalescing counts, bank conflicts, broadcast serializations
//! and arithmetic counters are all per-warp functions of addresses alone,
//! so sharding them per block and summing (`KernelStats::merge`) is exact.
//!
//! ## Hot-path layout
//!
//! These types sit on the interpreter's innermost loop, so every structure
//! is flat and allocation-free per access (see DESIGN.md §9): the store
//! journal is a short sorted vector of 4 KiB pages (data + a 1-bit-per-byte
//! written mask) with an `[lo, hi)` range reject so reads that never touch
//! journaled bytes cost two compares; constant-line tracking is a bitmap
//! over the constant segment's ≤ 256 lines; and the distinct-unit scans all
//! share [`dedup::for_each_unit`]'s stack bitmap instead of O(n²) scans.
//!
//! Every access is bounds-checked against the owning memory; violations
//! raise a typed [`DeviceFault`](crate::DeviceFault) that unwinds to the
//! per-block containment boundary instead of panicking the process (see
//! [`crate::fault`]). With memcheck enabled, loads additionally verify that
//! every byte read was written at some point — in journaled mode a byte
//! counts as initialized if either the shared base's shadow marks it or
//! this block's own journal covers it. When no sanitizer tool is attached,
//! a single warp-level bounds check replaces the per-lane checks; any
//! violation re-runs the per-lane path so faults name the same lane, in
//! the same order, with the same partially-applied stores as before.

use crate::fault::{self, AccessKind, FaultKind, MemSpace, Site};
use crate::mem::constant::{ConstantMemory, LineBitmap};
use crate::mem::global::GlobalMemory;
use crate::mem::{dedup, lanes};
use crate::pricing::{segment_count, RoCache};
use crate::spec::WARP_SIZE;
use crate::stats::KernelStats;
use crate::warp::{LaneMask, WarpAddrs};

/// Widest single-lane access in the ISA modeled here: a `float4` load/store
/// (the byte paths use at most 8 bytes per lane).
const MAX_LANE_BYTES: usize = 16;

/// Journal page granularity. 4 KiB balances per-page overhead (4.5 KiB
/// resident per touched page) against page-table length — a block's output
/// tile spans a handful of pages.
const PAGE_BYTES: usize = 4096;
/// Words in a page's 1-bit-per-byte written mask.
const PAGE_WORDS: usize = PAGE_BYTES / 64;

/// One page of journaled stores: the block's bytes plus a bitmask of which
/// of them were actually written.
#[derive(Debug)]
struct JournalPage {
    /// Page-aligned device base address.
    base: u64,
    data: Box<[u8; PAGE_BYTES]>,
    /// 1 bit per byte of `data`: set iff this block wrote that byte.
    written: Box<[u64; PAGE_WORDS]>,
}

impl JournalPage {
    fn fresh(base: u64) -> Self {
        JournalPage {
            base,
            data: Box::new([0u8; PAGE_BYTES]),
            written: Box::new([0u64; PAGE_WORDS]),
        }
    }

    fn has_byte(&self, off: usize) -> bool {
        self.written[off / 64] >> (off % 64) & 1 == 1
    }
}

/// Index of the first bit at or after `from` whose value equals `target`
/// (`true` = set), or `None` if no such bit exists in the mask.
fn next_bit(words: &[u64; PAGE_WORDS], from: usize, target: bool) -> Option<usize> {
    let mut w = from / 64;
    let select = |x: u64| if target { x } else { !x };
    let mut masked = select(words[w]) & (!0u64 << (from % 64));
    loop {
        if masked != 0 {
            return Some(w * 64 + masked.trailing_zeros() as usize);
        }
        w += 1;
        if w >= PAGE_WORDS {
            return None;
        }
        masked = select(words[w]);
    }
}

/// A block-private journal of global-memory stores, kept as sorted 4 KiB
/// pages.
///
/// The launcher replays it into the shared [`GlobalMemory`] with
/// [`GlobalMemory::apply_journal`] once per block, in block-id order. Pages
/// hold each byte's **last** value, so replaying maximal written runs in
/// address order leaves memory identical to an issue-order replay — while
/// touching each byte once instead of once per store. The written mask
/// doubles as the read-your-own-writes overlay for the owning block, with
/// an `[lo, hi)` range reject so loads outside everything the block ever
/// stored (the common case: conv kernels read inputs and write outputs in
/// disjoint ranges) cost two compares.
#[derive(Debug, Default)]
pub(crate) struct WriteJournal {
    /// Touched pages, sorted by base address.
    pages: Vec<JournalPage>,
    /// Most recently written page index: stores are spatially local, so
    /// this usually skips the binary search.
    mru: usize,
    /// Smallest address written so far (fast-path reject for reads).
    lo: u64,
    /// One past the largest address written so far.
    hi: u64,
}

impl WriteJournal {
    pub(crate) fn new() -> Self {
        WriteJournal {
            pages: Vec::new(),
            mru: 0,
            lo: u64::MAX,
            hi: 0,
        }
    }

    /// Whether the block stored anything at all.
    pub(crate) fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// The page with base address `base`, created (keeping `pages` sorted)
    /// if the block has not touched it yet.
    fn page_for_write(&mut self, base: u64) -> &mut JournalPage {
        if let Some(p) = self.pages.get(self.mru) {
            if p.base == base {
                return &mut self.pages[self.mru];
            }
        }
        let idx = match self.pages.binary_search_by_key(&base, |p| p.base) {
            Ok(i) => i,
            Err(i) => {
                self.pages.insert(i, JournalPage::fresh(base));
                i
            }
        };
        self.mru = idx;
        &mut self.pages[idx]
    }

    fn page(&self, base: u64) -> Option<&JournalPage> {
        self.pages
            .binary_search_by_key(&base, |p| p.base)
            .ok()
            .map(|i| &self.pages[i])
    }

    fn record(&mut self, addr: u64, bytes: &[u8]) {
        debug_assert!(bytes.len() <= MAX_LANE_BYTES);
        self.lo = self.lo.min(addr);
        self.hi = self.hi.max(addr + bytes.len() as u64);
        let mut addr = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let base = addr & !(PAGE_BYTES as u64 - 1);
            let off = (addr - base) as usize;
            let take = rest.len().min(PAGE_BYTES - off);
            let page = self.page_for_write(base);
            page.data[off..off + take].copy_from_slice(&rest[..take]);
            let mut b = off;
            while b < off + take {
                let span = (64 - b % 64).min(off + take - b);
                let mask = (!0u64 >> (64 - span)) << (b % 64);
                page.written[b / 64] |= mask;
                b += span;
            }
            addr += take as u64;
            rest = &rest[take..];
        }
    }

    /// Patches `out` (a copy of base memory at `addr`) with any bytes this
    /// journal has overwritten.
    fn patch(&self, addr: u64, out: &mut [u8]) {
        let end = addr + out.len() as u64;
        if end <= self.lo || addr >= self.hi {
            return; // conv kernels read inputs / write outputs in disjoint ranges
        }
        let mut done = 0usize;
        while done < out.len() {
            let a = addr + done as u64;
            let base = a & !(PAGE_BYTES as u64 - 1);
            let off = (a - base) as usize;
            let take = (out.len() - done).min(PAGE_BYTES - off);
            if let Some(page) = self.page(base) {
                for i in 0..take {
                    if page.has_byte(off + i) {
                        out[done + i] = page.data[off + i];
                    }
                }
            }
            done += take;
        }
    }

    /// Whether this block already stored byte `addr` (used by memcheck:
    /// a journaled byte is initialized for the owning block).
    fn has_byte(&self, addr: u64) -> bool {
        if addr < self.lo || addr >= self.hi {
            return false;
        }
        let base = addr & !(PAGE_BYTES as u64 - 1);
        self.page(base)
            .is_some_and(|p| p.has_byte((addr - base) as usize))
    }

    /// Visits every maximal run of journaled bytes as `(addr, bytes)`, in
    /// ascending address order. Each byte appears exactly once, holding the
    /// last value the block stored to it.
    pub(crate) fn for_each_run(&self, mut f: impl FnMut(u64, &[u8])) {
        for page in &self.pages {
            let mut b = 0usize;
            while let Some(start) = next_bit(&page.written, b, true) {
                let end = next_bit(&page.written, start, false).unwrap_or(PAGE_BYTES);
                f(page.base + start as u64, &page.data[start..end]);
                if end >= PAGE_BYTES {
                    break;
                }
                b = end;
            }
        }
    }
}

/// A thread block's port to global memory.
///
/// All warp-level global traffic flows through here; the instrumentation
/// (requests, coalesced transactions, bus/useful bytes) is identical in
/// both variants because it depends only on the addresses.
#[derive(Debug)]
pub(crate) enum GmPlane<'a> {
    /// Serial execution: reads and writes go straight to the device memory.
    Direct(&'a mut GlobalMemory),
    /// Parallel execution: reads come from the shared base (patched with
    /// this block's own stores), writes go to the private journal.
    Journaled {
        base: &'a GlobalMemory,
        journal: WriteJournal,
    },
}

impl<'a> GmPlane<'a> {
    fn base(&self) -> &GlobalMemory {
        match self {
            GmPlane::Direct(gm) => gm,
            GmPlane::Journaled { base, .. } => base,
        }
    }

    /// Consumes a journaled plane, returning its journal (`None` for
    /// direct planes, whose writes already landed).
    pub(crate) fn into_journal(self) -> Option<WriteJournal> {
        match self {
            GmPlane::Direct(_) => None,
            GmPlane::Journaled { journal, .. } => Some(journal),
        }
    }

    /// Raises a typed fault unless `[addr, addr + width)` is device-valid.
    fn check(&self, addr: u64, width: u64, access: AccessKind, site: Site, lane: usize) {
        let limit = self.base().device_limit();
        if addr.checked_add(width).is_none_or(|end| end > limit) {
            fault::raise(
                FaultKind::OutOfBounds {
                    space: MemSpace::Global,
                    access,
                    addr,
                    width,
                    limit,
                },
                site.warp,
                lane,
            );
        }
    }

    /// True when this is a direct plane with memcheck off and every active
    /// lane's `[addr, addr + width)` fits device memory — the precondition
    /// for the check-free copy loops in the warp accessors. Journaled
    /// planes always take the general path (loads must consult the store
    /// overlay). The warp-level bound uses `saturating_add` so a wrapping
    /// address still fails into the faulting path.
    #[inline]
    fn plain_in_bounds(&self, addrs: &WarpAddrs, width: u64, mask: LaneMask) -> bool {
        let GmPlane::Direct(gm) = self else {
            return false;
        };
        if gm.shadow().is_some() {
            return false;
        }
        lanes::max_end(addrs, width, mask) <= gm.device_limit()
    }

    fn read_into(&self, addr: u64, out: &mut [u8], site: Site, lane: usize) {
        self.check(addr, out.len() as u64, AccessKind::Load, site, lane);
        let base = self.base();
        out.copy_from_slice(base.bytes(addr, out.len()));
        if let GmPlane::Journaled { journal, .. } = self {
            journal.patch(addr, out);
        }
        // memcheck: every byte read must have been written by someone —
        // the base shadow (host transfers, earlier blocks in serial mode)
        // or, in journaled mode, this block's own store journal.
        if let Some(shadow) = base.shadow() {
            let journal = match self {
                GmPlane::Direct(_) => None,
                GmPlane::Journaled { journal, .. } => Some(journal),
            };
            for b in addr..addr + out.len() as u64 {
                if !shadow.is_marked(b) && !journal.is_some_and(|j| j.has_byte(b)) {
                    fault::raise(
                        FaultKind::UninitializedRead {
                            space: MemSpace::Global,
                            addr: b,
                            width: out.len() as u64,
                        },
                        site.warp,
                        lane,
                    );
                }
            }
        }
    }

    fn write(&mut self, addr: u64, bytes: &[u8], site: Site, lane: usize) {
        self.check(addr, bytes.len() as u64, AccessKind::Store, site, lane);
        match self {
            GmPlane::Direct(gm) => {
                gm.bytes_mut(addr, bytes.len()).copy_from_slice(bytes);
                gm.mark_init(addr, bytes.len() as u64);
            }
            GmPlane::Journaled { journal, .. } => {
                journal.record(addr, bytes);
            }
        }
    }

    /// Device warp load of `V` consecutive `f32`s per lane (a
    /// `float`/`float2`/`float4` load for `V` = 1/2/4). Records one request
    /// and the coalesced transaction count.
    ///
    /// An out-of-bounds active lane (or, under memcheck, a read of
    /// never-written bytes) raises a [`DeviceFault`](crate::DeviceFault)
    /// contained at the block boundary.
    pub(crate) fn warp_ld<const V: usize>(
        &self,
        stats: &mut KernelStats,
        site: Site,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [[f32; V]; WARP_SIZE] {
        let width = (V * 4) as u64;
        let mut out = [[0.0f32; V]; WARP_SIZE];
        if self.plain_in_bounds(addrs, width, mask) {
            let base = self.base();
            for lane in mask.iter() {
                let raw = base.bytes(addrs[lane], V * 4);
                for (v, slot) in out[lane].iter_mut().enumerate() {
                    *slot = f32::from_le_bytes(raw[v * 4..v * 4 + 4].try_into().unwrap());
                }
            }
        } else {
            let mut raw = [0u8; MAX_LANE_BYTES];
            for lane in mask.iter() {
                self.read_into(addrs[lane], &mut raw[..V * 4], site, lane);
                for (v, slot) in out[lane].iter_mut().enumerate() {
                    *slot = f32::from_le_bytes(raw[v * 4..v * 4 + 4].try_into().unwrap());
                }
            }
        }
        let seg = self.base().ld_transaction_bytes();
        let segs = segment_count(addrs, width, mask, seg);
        stats.gm_ld_requests += 1;
        stats.gm_ld_transactions += segs;
        stats.gm_ld_bytes_bus += segs * seg;
        stats.gm_ld_bytes_useful += mask.count() as u64 * width;
        out
    }

    /// Device warp load of `V` consecutive `f32`s per lane through the
    /// **read-only (texture) path**: lines already touched by this thread
    /// block are served from the per-SM read-only cache without bus
    /// traffic. This is how cuDNN streams its implicit-`im2col` patches,
    /// whose `K*K`-fold overlap would otherwise all hit DRAM.
    ///
    /// Faults like [`GmPlane::warp_ld`].
    pub(crate) fn warp_ld_ro<const V: usize>(
        &self,
        stats: &mut KernelStats,
        ro: &mut RoCache,
        site: Site,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [[f32; V]; WARP_SIZE] {
        let width = (V * 4) as u64;
        let mut out = [[0.0f32; V]; WARP_SIZE];
        if self.plain_in_bounds(addrs, width, mask) {
            let base = self.base();
            for lane in mask.iter() {
                let raw = base.bytes(addrs[lane], V * 4);
                for (v, slot) in out[lane].iter_mut().enumerate() {
                    *slot = f32::from_le_bytes(raw[v * 4..v * 4 + 4].try_into().unwrap());
                }
            }
        } else {
            let mut raw = [0u8; MAX_LANE_BYTES];
            for lane in mask.iter() {
                self.read_into(addrs[lane], &mut raw[..V * 4], site, lane);
                for (v, slot) in out[lane].iter_mut().enumerate() {
                    *slot = f32::from_le_bytes(raw[v * 4..v * 4 + 4].try_into().unwrap());
                }
            }
        }
        // Count transactions only for lines missing from the block cache;
        // lines are touched in first-occurrence order, preserving the FIFO's
        // insertion order.
        let seg = self.base().ld_transaction_bytes();
        let mut misses = 0u64;
        dedup::for_each_unit(addrs, width, mask, seg, |line, first_visit| {
            if first_visit {
                if ro.touch(line) {
                    stats.gm_ro_hits += 1;
                } else {
                    misses += 1;
                }
            }
        });
        stats.gm_ld_requests += 1;
        stats.gm_ld_transactions += misses;
        stats.gm_ld_bytes_bus += misses * seg;
        stats.gm_ld_bytes_useful += mask.count() as u64 * width;
        out
    }

    /// Device warp store of `V` consecutive `f32`s per lane.
    ///
    /// An out-of-bounds active lane raises a
    /// [`DeviceFault`](crate::DeviceFault) contained at the block boundary.
    pub(crate) fn warp_st<const V: usize>(
        &mut self,
        stats: &mut KernelStats,
        site: Site,
        addrs: &WarpAddrs,
        values: &[[f32; V]; WARP_SIZE],
        mask: LaneMask,
    ) {
        let width = (V * 4) as u64;
        let mut raw = [0u8; MAX_LANE_BYTES];
        if self.plain_in_bounds(addrs, width, mask) {
            let GmPlane::Direct(gm) = self else {
                unreachable!("plain_in_bounds only holds for direct planes")
            };
            for lane in mask.iter() {
                for (v, val) in values[lane].iter().enumerate() {
                    raw[v * 4..v * 4 + 4].copy_from_slice(&val.to_le_bytes());
                }
                gm.bytes_mut(addrs[lane], V * 4)
                    .copy_from_slice(&raw[..V * 4]);
            }
        } else {
            for lane in mask.iter() {
                for (v, val) in values[lane].iter().enumerate() {
                    raw[v * 4..v * 4 + 4].copy_from_slice(&val.to_le_bytes());
                }
                self.write(addrs[lane], &raw[..V * 4], site, lane);
            }
        }
        let seg = self.base().st_transaction_bytes();
        let segs = segment_count(addrs, width, mask, seg);
        stats.gm_st_requests += 1;
        stats.gm_st_transactions += segs;
        stats.gm_st_bytes_bus += segs * seg;
        stats.gm_st_bytes_useful += mask.count() as u64 * width;
    }

    /// Device warp load of `W` raw bytes per lane (used by the short-data-
    /// type extension: `W` = 2 models `fp16`, `W` = 1 models `int8`).
    ///
    /// Faults like [`GmPlane::warp_ld`].
    pub(crate) fn warp_ld_bytes<const W: usize>(
        &self,
        stats: &mut KernelStats,
        site: Site,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [[u8; W]; WARP_SIZE] {
        let width = W as u64;
        let mut out = [[0u8; W]; WARP_SIZE];
        if self.plain_in_bounds(addrs, width, mask) {
            let base = self.base();
            for lane in mask.iter() {
                out[lane].copy_from_slice(base.bytes(addrs[lane], W));
            }
        } else {
            for lane in mask.iter() {
                self.read_into(addrs[lane], &mut out[lane], site, lane);
            }
        }
        let seg = self.base().ld_transaction_bytes();
        let segs = segment_count(addrs, width, mask, seg);
        stats.gm_ld_requests += 1;
        stats.gm_ld_transactions += segs;
        stats.gm_ld_bytes_bus += segs * seg;
        stats.gm_ld_bytes_useful += mask.count() as u64 * width;
        out
    }

    /// Device warp store of `W` raw bytes per lane.
    ///
    /// Faults like [`GmPlane::warp_st`].
    pub(crate) fn warp_st_bytes<const W: usize>(
        &mut self,
        stats: &mut KernelStats,
        site: Site,
        addrs: &WarpAddrs,
        values: &[[u8; W]; WARP_SIZE],
        mask: LaneMask,
    ) {
        let width = W as u64;
        if self.plain_in_bounds(addrs, width, mask) {
            let GmPlane::Direct(gm) = self else {
                unreachable!("plain_in_bounds only holds for direct planes")
            };
            for lane in mask.iter() {
                gm.bytes_mut(addrs[lane], W).copy_from_slice(&values[lane]);
            }
        } else {
            for lane in mask.iter() {
                self.write(addrs[lane], &values[lane], site, lane);
            }
        }
        let seg = self.base().st_transaction_bytes();
        let segs = segment_count(addrs, width, mask, seg);
        stats.gm_st_requests += 1;
        stats.gm_st_transactions += segs;
        stats.gm_st_bytes_bus += segs * seg;
        stats.gm_st_bytes_useful += mask.count() as u64 * width;
    }
}

/// A thread block's port to constant memory.
#[derive(Debug)]
pub(crate) enum CmPlane<'a> {
    /// Serial execution: first-touch misses are counted against the
    /// launch-scoped cache state inside [`ConstantMemory`] as they happen.
    Direct(&'a mut ConstantMemory),
    /// Parallel execution: the block records which lines it touched in a
    /// bitmap; misses are counted at merge time as the union of all
    /// blocks' bitmaps (exactly the serial count, since the cache model
    /// never evicts within a launch).
    Shared {
        base: &'a ConstantMemory,
        touched: LineBitmap,
    },
}

impl<'a> CmPlane<'a> {
    /// A parallel-mode plane for one block, with its touched-line bitmap
    /// sized to `base`'s line range.
    pub(crate) fn shared(base: &'a ConstantMemory) -> Self {
        CmPlane::Shared {
            touched: LineBitmap::new(base.num_lines()),
            base,
        }
    }

    fn base(&self) -> &ConstantMemory {
        match self {
            CmPlane::Direct(cm) => cm,
            CmPlane::Shared { base, .. } => base,
        }
    }

    /// Consumes a shared plane, returning the touched-line bitmap (`None`
    /// for direct planes, whose misses were counted inline).
    pub(crate) fn into_touched_lines(self) -> Option<LineBitmap> {
        match self {
            CmPlane::Direct(_) => None,
            CmPlane::Shared { touched, .. } => Some(touched),
        }
    }

    /// Device warp load of one `f32` per lane.
    ///
    /// Cost model: `d` distinct active addresses cost `d - 1` serialization
    /// cycles (a fully-uniform read is free); each first-touched cache line
    /// counts one miss (deferred to merge time in `Shared` mode).
    ///
    /// An active lane reading outside constant memory (or, under memcheck,
    /// reading never-written constants) raises a
    /// [`DeviceFault`](crate::DeviceFault) contained at the block boundary.
    pub(crate) fn warp_ld_f32(
        &mut self,
        stats: &mut KernelStats,
        site: Site,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [f32; WARP_SIZE] {
        let mut out = [0.0f32; WARP_SIZE];
        let line_bytes = self.base().line_bytes();
        for lane in mask.iter() {
            out[lane] = self.base().read_f32(addrs[lane], site, lane);
        }
        // Serialization counts distinct addresses — order-insensitive, so it
        // runs on the dispatched lane backend. Line touching is idempotent
        // (`touch_line` / `LineBitmap::set` only report the first touch), so
        // any dedup that visits every covered line at least once charges the
        // same misses. The dominant pattern by far is a fully-uniform
        // broadcast (all lanes on one filter element): one lane-engine
        // bounds pass resolves it to one distinct address and one touch.
        let mut touch = |line: u64, cm_misses: &mut u64| match self {
            CmPlane::Direct(cm) => {
                if cm.touch_line(line) {
                    *cm_misses += 1;
                }
            }
            CmPlane::Shared { touched, .. } => {
                touched.set(line);
            }
        };
        let distinct = match lanes::unit_bounds(addrs, 1, mask, 1) {
            None => 0,
            Some((lo, hi)) if lo == hi => {
                touch(lo / line_bytes, &mut stats.cm_misses);
                1
            }
            Some(_) => {
                let distinct = lanes::distinct_units(addrs, 1, mask, 1);
                if line_bytes.is_power_of_two() {
                    dedup::for_each_unit(addrs, 1, mask, line_bytes, |line, first_visit| {
                        if first_visit {
                            touch(line, &mut stats.cm_misses);
                        }
                    });
                } else {
                    // Hand-built non-power-of-two line size: the engine's
                    // shift-based units don't apply; dedup distinct
                    // addresses and divide per first visit, as the
                    // pre-engine code did.
                    dedup::for_each_unit(addrs, 1, mask, 1, |a, first_visit| {
                        if first_visit {
                            touch(a / line_bytes, &mut stats.cm_misses);
                        }
                    });
                }
                distinct
            }
        };
        stats.cm_requests += 1;
        stats.cm_cycles += distinct.saturating_sub(1);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPayload;
    use crate::testrng::Xoshiro;
    use crate::warp::{lane_addrs, lane_addrs_uniform};
    use std::collections::HashMap;

    fn gm() -> GlobalMemory {
        GlobalMemory::new(1 << 20, 128, 32, 48 * 1024)
    }

    fn seeded(gm: &mut GlobalMemory, n: u64) -> crate::mem::GmBuf {
        let buf = gm.alloc_f32(n).unwrap();
        let vals: Vec<f32> = (0..n).map(|i| i as f32).collect();
        gm.write_f32s(buf, 0, &vals).unwrap();
        buf
    }

    #[test]
    fn journaled_reads_see_base_data() {
        let mut m = gm();
        let buf = seeded(&mut m, 64);
        let plane = GmPlane::Journaled {
            base: &m,
            journal: WriteJournal::new(),
        };
        let mut stats = KernelStats::default();
        let out = plane.warp_ld::<1>(
            &mut stats,
            Site::ZERO,
            &lane_addrs(buf.f32_addr(0), 4),
            LaneMask::ALL,
        );
        assert_eq!(out[5][0], 5.0);
        assert_eq!(stats.gm_ld_transactions, 1);
    }

    #[test]
    fn journaled_block_reads_its_own_writes() {
        let mut m = gm();
        let buf = seeded(&mut m, 64);
        let mut plane = GmPlane::Journaled {
            base: &m,
            journal: WriteJournal::new(),
        };
        let mut stats = KernelStats::default();
        let addrs = lane_addrs(buf.f32_addr(0), 4);
        let vals: [[f32; 1]; WARP_SIZE] = std::array::from_fn(|l| [l as f32 + 100.0]);
        plane.warp_st::<1>(&mut stats, Site::ZERO, &addrs, &vals, LaneMask::ALL);
        let back = plane.warp_ld::<1>(&mut stats, Site::ZERO, &addrs, LaneMask::ALL);
        assert_eq!(back[7][0], 107.0);
        // The base is untouched until the journal is replayed.
        assert_eq!(m.read_f32s(buf, 7, 1).unwrap()[0], 7.0);
    }

    #[test]
    fn journal_replay_matches_direct_execution() {
        // Same store sequence through Direct and Journaled planes must
        // leave identical memory and counters.
        let run = |journaled: bool| -> (Vec<f32>, KernelStats) {
            let mut m = gm();
            let buf = seeded(&mut m, 64);
            let mut stats = KernelStats::default();
            let addrs = lane_addrs(buf.f32_addr(0), 4);
            let v1: [[f32; 1]; WARP_SIZE] = std::array::from_fn(|l| [l as f32 * 2.0]);
            let v2: [[f32; 1]; WARP_SIZE] = std::array::from_fn(|l| [l as f32 * 3.0]);
            if journaled {
                let mut plane = GmPlane::Journaled {
                    base: &m,
                    journal: WriteJournal::new(),
                };
                plane.warp_st::<1>(&mut stats, Site::ZERO, &addrs, &v1, LaneMask::ALL);
                plane.warp_st::<1>(&mut stats, Site::ZERO, &addrs, &v2, LaneMask::first(8));
                let journal = plane.into_journal().unwrap();
                m.apply_journal(&journal);
            } else {
                let mut plane = GmPlane::Direct(&mut m);
                plane.warp_st::<1>(&mut stats, Site::ZERO, &addrs, &v1, LaneMask::ALL);
                plane.warp_st::<1>(&mut stats, Site::ZERO, &addrs, &v2, LaneMask::first(8));
            }
            (m.read_f32s(buf, 0, 64).unwrap(), stats)
        };
        let (direct_mem, direct_stats) = run(false);
        let (journal_mem, journal_stats) = run(true);
        assert_eq!(direct_mem, journal_mem);
        assert_eq!(direct_stats, journal_stats);
    }

    #[test]
    fn journaled_uninit_check_honors_own_writes() {
        let mut m = gm();
        m.enable_uninit_tracking(false);
        let buf = m.alloc_f32(32).unwrap();
        let mut plane = GmPlane::Journaled {
            base: &m,
            journal: WriteJournal::new(),
        };
        let mut stats = KernelStats::default();
        let addrs = lane_addrs(buf.f32_addr(0), 4);
        let vals: [[f32; 1]; WARP_SIZE] = std::array::from_fn(|l| [l as f32]);
        // Nothing in the base shadow, but the block's own journal covers
        // the bytes: the read-back is clean.
        plane.warp_st::<1>(&mut stats, Site::ZERO, &addrs, &vals, LaneMask::ALL);
        let back = plane.warp_ld::<1>(&mut stats, Site::ZERO, &addrs, LaneMask::ALL);
        assert_eq!(back[9][0], 9.0);
    }

    #[test]
    fn journaled_uninit_read_raises() {
        crate::fault::install_quiet_hook();
        let payload = std::panic::catch_unwind(|| {
            let mut m = gm();
            m.enable_uninit_tracking(false);
            let buf = m.alloc_f32(32).unwrap();
            let plane = GmPlane::Journaled {
                base: &m,
                journal: WriteJournal::new(),
            };
            let mut stats = KernelStats::default();
            plane.warp_ld::<1>(
                &mut stats,
                Site::ZERO,
                &lane_addrs(buf.f32_addr(0), 4),
                LaneMask::ALL,
            );
        })
        .unwrap_err();
        let p = payload.downcast::<FaultPayload>().unwrap();
        assert!(matches!(p.kind, FaultKind::UninitializedRead { .. }));
    }

    #[test]
    fn paged_journal_matches_byte_map_reference() {
        // Differential property test: the paged overlay must agree with a
        // naive byte map (the structure it replaced) on random store/load
        // sequences, including journaled read-your-own-writes.
        let mut rng = Xoshiro::seeded(0xC0FFEE);
        let mut journal = WriteJournal::new();
        let mut reference: HashMap<u64, u8> = HashMap::new();
        // Several pages with gaps, plus stores straddling page boundaries.
        const SPAN: u64 = 40_000;
        for _ in 0..4000 {
            let r = rng.next();
            let addr = r % SPAN;
            let len = 1 + (r >> 32) as usize % MAX_LANE_BYTES;
            let mut bytes = [0u8; MAX_LANE_BYTES];
            for (i, b) in bytes[..len].iter_mut().enumerate() {
                *b = (rng.next() >> (i % 8)) as u8;
            }
            journal.record(addr, &bytes[..len]);
            for (i, &b) in bytes[..len].iter().enumerate() {
                reference.insert(addr + i as u64, b);
            }
            // Read-your-own-writes probe through patch().
            let raddr = rng.next() % SPAN;
            let rlen = 1 + (rng.next() % 24) as usize;
            let mut got = vec![0xA5u8; rlen];
            journal.patch(raddr, &mut got);
            for (i, &g) in got.iter().enumerate() {
                let want = reference.get(&(raddr + i as u64)).copied().unwrap_or(0xA5);
                assert_eq!(g, want, "patched byte at {raddr}+{i}");
            }
            let probe = rng.next() % SPAN;
            assert_eq!(journal.has_byte(probe), reference.contains_key(&probe));
        }
        assert!(!journal.is_empty());
        // Replay: ascending disjoint runs covering exactly the written
        // bytes, each holding its last-stored value.
        let mut replayed: HashMap<u64, u8> = HashMap::new();
        let mut last_end = 0u64;
        journal.for_each_run(|addr, bytes| {
            assert!(addr >= last_end, "runs must be disjoint and ascending");
            last_end = addr + bytes.len() as u64;
            for (i, &b) in bytes.iter().enumerate() {
                replayed.insert(addr + i as u64, b);
            }
        });
        assert_eq!(replayed, reference);
    }

    #[test]
    fn journal_run_spans_page_boundary_writes() {
        // A store straddling two pages must replay as its exact bytes.
        let mut journal = WriteJournal::new();
        let addr = PAGE_BYTES as u64 - 7;
        let bytes: Vec<u8> = (1..=14).collect();
        journal.record(addr, &bytes);
        let mut runs = Vec::new();
        journal.for_each_run(|a, b| runs.push((a, b.to_vec())));
        assert_eq!(runs.len(), 2); // one run per page
        assert_eq!(runs[0], (addr, bytes[..7].to_vec()));
        assert_eq!(runs[1], (PAGE_BYTES as u64, bytes[7..].to_vec()));
    }

    #[test]
    fn ro_cache_hits_do_not_count_bus_traffic() {
        let mut m = gm();
        let buf = seeded(&mut m, 64);
        let plane = GmPlane::Direct(&mut m);
        let mut ro = RoCache::new(16);
        let mut stats = KernelStats::default();
        let addrs = lane_addrs(buf.f32_addr(0), 4);
        plane.warp_ld_ro::<1>(&mut stats, &mut ro, Site::ZERO, &addrs, LaneMask::ALL);
        plane.warp_ld_ro::<1>(&mut stats, &mut ro, Site::ZERO, &addrs, LaneMask::ALL);
        assert_eq!(stats.gm_ld_transactions, 1); // second read fully cached
        assert_eq!(stats.gm_ro_hits, 1);
    }

    #[test]
    fn shared_cm_plane_defers_miss_counting() {
        let mut cm = ConstantMemory::new(1 << 16, 256);
        cm.write_f32s(0, &[1.0, 2.0]).unwrap();
        let mut plane = CmPlane::shared(&cm);
        let mut stats = KernelStats::default();
        plane.warp_ld_f32(
            &mut stats,
            Site::ZERO,
            &lane_addrs_uniform(0),
            LaneMask::ALL,
        );
        plane.warp_ld_f32(
            &mut stats,
            Site::ZERO,
            &lane_addrs_uniform(4),
            LaneMask::ALL,
        );
        assert_eq!(stats.cm_misses, 0); // deferred
        assert_eq!(stats.cm_requests, 2);
        let touched = plane.into_touched_lines().unwrap();
        assert_eq!(touched.count(), 1); // both addresses in line 0
        assert_eq!(cm.absorb_lines(&touched), 1);
        assert_eq!(cm.absorb_lines(&touched), 0); // union: no double count
    }
}

//! Per-block views of the shared device memories.
//!
//! The parallel launch path (see [`crate::Gpu::launch`]) runs many thread
//! blocks concurrently against one [`GlobalMemory`] and one
//! [`ConstantMemory`]. The types here make that safe **and** keep every
//! counter bit-identical to serial execution:
//!
//! * [`GmPlane`] — a block's access port to global memory. In serial mode
//!   it writes through (`Direct`); in parallel mode it reads the shared
//!   base and records stores into a private [`WriteJournal`] (`Journaled`)
//!   that the launcher replays into the base in block-id order after all
//!   workers join. A journaled block observes its *own* stores (byte
//!   overlay) but never another in-flight block's — the disjoint-write
//!   contract that CUDA grids already obey (blocks may not communicate
//!   through global memory within one launch without a device-wide sync,
//!   which this simulator does not provide).
//! * [`RoCache`] — the per-SM read-only (texture) cache. Its residency was
//!   always reset per block, so under parallelism it simply becomes a
//!   per-block value; counts are unchanged by construction.
//! * [`CmPlane`] — the constant-cache model. Serially, first-touch misses
//!   accumulate in a launch-scoped line set; in parallel mode each block
//!   records the lines it touched and the launcher counts
//!   `|union of all sets|` at merge time, which equals the serial miss
//!   count exactly because the cache model never evicts within a launch.
//!
//! Transaction/coalescing counts, bank conflicts, broadcast serializations
//! and arithmetic counters are all per-warp functions of addresses alone,
//! so sharding them per block and summing (`KernelStats::merge`) is exact.
//!
//! Every access is bounds-checked against the owning memory; violations
//! raise a typed [`DeviceFault`](crate::DeviceFault) that unwinds to the
//! per-block containment boundary instead of panicking the process (see
//! [`crate::fault`]). With memcheck enabled, loads additionally verify that
//! every byte read was written at some point — in journaled mode a byte
//! counts as initialized if either the shared base's shadow marks it or
//! this block's own journal covers it.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::fault::{self, AccessKind, FaultKind, MemSpace, Site};
use crate::mem::constant::ConstantMemory;
use crate::mem::global::{segment_count, GlobalMemory};
use crate::spec::WARP_SIZE;
use crate::stats::KernelStats;
use crate::warp::{LaneMask, WarpAddrs};

/// Widest single-lane access in the ISA modeled here: a `float4` load/store
/// (the byte paths use at most 8 bytes per lane).
const MAX_LANE_BYTES: usize = 16;

/// One recorded store: `len` bytes at device address `addr`.
#[derive(Debug, Clone, Copy)]
struct WriteRec {
    addr: u64,
    len: u8,
    data: [u8; MAX_LANE_BYTES],
}

/// A block-private log of global-memory stores.
///
/// Stores are appended in program order and replayed into the shared
/// [`GlobalMemory`] with [`GlobalMemory::apply_journal`] once the launcher
/// merges blocks in block-id order; a byte-granular overlay gives the
/// owning block read-your-own-writes semantics meanwhile.
#[derive(Debug, Default)]
pub(crate) struct WriteJournal {
    log: Vec<WriteRec>,
    overlay: HashMap<u64, u8>,
    /// Smallest address written so far (fast-path reject for reads).
    lo: u64,
    /// One past the largest address written so far.
    hi: u64,
}

impl WriteJournal {
    pub(crate) fn new() -> Self {
        WriteJournal {
            log: Vec::new(),
            overlay: HashMap::new(),
            lo: u64::MAX,
            hi: 0,
        }
    }

    fn record(&mut self, addr: u64, bytes: &[u8]) {
        debug_assert!(bytes.len() <= MAX_LANE_BYTES);
        let mut data = [0u8; MAX_LANE_BYTES];
        data[..bytes.len()].copy_from_slice(bytes);
        self.log.push(WriteRec {
            addr,
            len: bytes.len() as u8,
            data,
        });
        for (i, &b) in bytes.iter().enumerate() {
            self.overlay.insert(addr + i as u64, b);
        }
        self.lo = self.lo.min(addr);
        self.hi = self.hi.max(addr + bytes.len() as u64);
    }

    /// Patches `out` (a copy of base memory at `addr`) with any bytes this
    /// journal has overwritten.
    fn patch(&self, addr: u64, out: &mut [u8]) {
        let end = addr + out.len() as u64;
        if end <= self.lo || addr >= self.hi {
            return; // conv kernels read inputs / write outputs in disjoint ranges
        }
        for (i, slot) in out.iter_mut().enumerate() {
            if let Some(&b) = self.overlay.get(&(addr + i as u64)) {
                *slot = b;
            }
        }
    }

    /// Whether this block already stored byte `addr` (used by memcheck:
    /// a journaled byte is initialized for the owning block).
    fn has_byte(&self, addr: u64) -> bool {
        addr >= self.lo && addr < self.hi && self.overlay.contains_key(&addr)
    }

    /// Recorded stores in program order, as `(addr, bytes)`.
    pub(crate) fn entries(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.log.iter().map(|r| (r.addr, &r.data[..r.len as usize]))
    }
}

/// Per-block residency model of the 48 KiB per-SM read-only (texture)
/// cache, FIFO-evicted at line granularity.
///
/// Only intra-block reuse is dependable on real hardware, so the serial
/// launcher always reset this state per block; making it a per-block value
/// changes nothing about the counts.
#[derive(Debug)]
pub(crate) struct RoCache {
    lines: HashSet<u64>,
    fifo: VecDeque<u64>,
    capacity: usize,
}

impl RoCache {
    pub(crate) fn new(capacity_lines: usize) -> Self {
        RoCache {
            lines: HashSet::new(),
            fifo: VecDeque::new(),
            capacity: capacity_lines,
        }
    }

    /// Returns whether `line` was resident, inserting it (with FIFO
    /// eviction) if not.
    fn touch(&mut self, line: u64) -> bool {
        if self.lines.contains(&line) {
            return true;
        }
        self.lines.insert(line);
        self.fifo.push_back(line);
        if self.fifo.len() > self.capacity {
            if let Some(old) = self.fifo.pop_front() {
                self.lines.remove(&old);
            }
        }
        false
    }
}

/// A thread block's port to global memory.
///
/// All warp-level global traffic flows through here; the instrumentation
/// (requests, coalesced transactions, bus/useful bytes) is identical in
/// both variants because it depends only on the addresses.
#[derive(Debug)]
pub(crate) enum GmPlane<'a> {
    /// Serial execution: reads and writes go straight to the device memory.
    Direct(&'a mut GlobalMemory),
    /// Parallel execution: reads come from the shared base (patched with
    /// this block's own stores), writes go to the private journal.
    Journaled {
        base: &'a GlobalMemory,
        journal: WriteJournal,
    },
}

impl<'a> GmPlane<'a> {
    fn base(&self) -> &GlobalMemory {
        match self {
            GmPlane::Direct(gm) => gm,
            GmPlane::Journaled { base, .. } => base,
        }
    }

    /// Consumes a journaled plane, returning its journal (`None` for
    /// direct planes, whose writes already landed).
    pub(crate) fn into_journal(self) -> Option<WriteJournal> {
        match self {
            GmPlane::Direct(_) => None,
            GmPlane::Journaled { journal, .. } => Some(journal),
        }
    }

    /// Raises a typed fault unless `[addr, addr + width)` is device-valid.
    fn check(&self, addr: u64, width: u64, access: AccessKind, site: Site, lane: usize) {
        let limit = self.base().device_limit();
        if addr.checked_add(width).is_none_or(|end| end > limit) {
            fault::raise(
                FaultKind::OutOfBounds {
                    space: MemSpace::Global,
                    access,
                    addr,
                    width,
                    limit,
                },
                site.warp,
                lane,
            );
        }
    }

    fn read_into(&self, addr: u64, out: &mut [u8], site: Site, lane: usize) {
        self.check(addr, out.len() as u64, AccessKind::Load, site, lane);
        let base = self.base();
        out.copy_from_slice(base.bytes(addr, out.len()));
        if let GmPlane::Journaled { journal, .. } = self {
            journal.patch(addr, out);
        }
        // memcheck: every byte read must have been written by someone —
        // the base shadow (host transfers, earlier blocks in serial mode)
        // or, in journaled mode, this block's own store journal.
        if let Some(shadow) = base.shadow() {
            let journal = match self {
                GmPlane::Direct(_) => None,
                GmPlane::Journaled { journal, .. } => Some(journal),
            };
            for b in addr..addr + out.len() as u64 {
                if !shadow.is_marked(b) && !journal.is_some_and(|j| j.has_byte(b)) {
                    fault::raise(
                        FaultKind::UninitializedRead {
                            space: MemSpace::Global,
                            addr: b,
                            width: out.len() as u64,
                        },
                        site.warp,
                        lane,
                    );
                }
            }
        }
    }

    fn write(&mut self, addr: u64, bytes: &[u8], site: Site, lane: usize) {
        self.check(addr, bytes.len() as u64, AccessKind::Store, site, lane);
        match self {
            GmPlane::Direct(gm) => {
                gm.bytes_mut(addr, bytes.len()).copy_from_slice(bytes);
                gm.mark_init(addr, bytes.len() as u64);
            }
            GmPlane::Journaled { journal, .. } => {
                journal.record(addr, bytes);
            }
        }
    }

    /// Device warp load of `V` consecutive `f32`s per lane (a
    /// `float`/`float2`/`float4` load for `V` = 1/2/4). Records one request
    /// and the coalesced transaction count.
    ///
    /// An out-of-bounds active lane (or, under memcheck, a read of
    /// never-written bytes) raises a [`DeviceFault`](crate::DeviceFault)
    /// contained at the block boundary.
    pub(crate) fn warp_ld<const V: usize>(
        &self,
        stats: &mut KernelStats,
        site: Site,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [[f32; V]; WARP_SIZE] {
        let width = (V * 4) as u64;
        let mut out = [[0.0f32; V]; WARP_SIZE];
        let mut raw = [0u8; MAX_LANE_BYTES];
        for lane in mask.iter() {
            self.read_into(addrs[lane], &mut raw[..V * 4], site, lane);
            for (v, slot) in out[lane].iter_mut().enumerate() {
                *slot = f32::from_le_bytes(raw[v * 4..v * 4 + 4].try_into().unwrap());
            }
        }
        let seg = self.base().ld_transaction_bytes();
        let segs = segment_count(addrs, width, mask, seg);
        stats.gm_ld_requests += 1;
        stats.gm_ld_transactions += segs;
        stats.gm_ld_bytes_bus += segs * seg;
        stats.gm_ld_bytes_useful += mask.count() as u64 * width;
        out
    }

    /// Device warp load of `V` consecutive `f32`s per lane through the
    /// **read-only (texture) path**: lines already touched by this thread
    /// block are served from the per-SM read-only cache without bus
    /// traffic. This is how cuDNN streams its implicit-`im2col` patches,
    /// whose `K*K`-fold overlap would otherwise all hit DRAM.
    ///
    /// Faults like [`GmPlane::warp_ld`].
    pub(crate) fn warp_ld_ro<const V: usize>(
        &self,
        stats: &mut KernelStats,
        ro: &mut RoCache,
        site: Site,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [[f32; V]; WARP_SIZE] {
        let width = (V * 4) as u64;
        let mut out = [[0.0f32; V]; WARP_SIZE];
        let mut raw = [0u8; MAX_LANE_BYTES];
        for lane in mask.iter() {
            self.read_into(addrs[lane], &mut raw[..V * 4], site, lane);
            for (v, slot) in out[lane].iter_mut().enumerate() {
                *slot = f32::from_le_bytes(raw[v * 4..v * 4 + 4].try_into().unwrap());
            }
        }
        // Count transactions only for lines missing from the block cache.
        let seg = self.base().ld_transaction_bytes();
        let mut lines = [u64::MAX; 64];
        let mut n = 0usize;
        for lane in mask.iter() {
            let first = addrs[lane] / seg;
            let last = (addrs[lane] + width - 1) / seg;
            for l in first..=last {
                if !lines[..n].contains(&l) {
                    lines[n] = l;
                    n += 1;
                }
            }
        }
        let mut misses = 0u64;
        for &l in &lines[..n] {
            if ro.touch(l) {
                stats.gm_ro_hits += 1;
            } else {
                misses += 1;
            }
        }
        stats.gm_ld_requests += 1;
        stats.gm_ld_transactions += misses;
        stats.gm_ld_bytes_bus += misses * seg;
        stats.gm_ld_bytes_useful += mask.count() as u64 * width;
        out
    }

    /// Device warp store of `V` consecutive `f32`s per lane.
    ///
    /// An out-of-bounds active lane raises a
    /// [`DeviceFault`](crate::DeviceFault) contained at the block boundary.
    pub(crate) fn warp_st<const V: usize>(
        &mut self,
        stats: &mut KernelStats,
        site: Site,
        addrs: &WarpAddrs,
        values: &[[f32; V]; WARP_SIZE],
        mask: LaneMask,
    ) {
        let width = (V * 4) as u64;
        let mut raw = [0u8; MAX_LANE_BYTES];
        for lane in mask.iter() {
            for (v, val) in values[lane].iter().enumerate() {
                raw[v * 4..v * 4 + 4].copy_from_slice(&val.to_le_bytes());
            }
            self.write(addrs[lane], &raw[..V * 4], site, lane);
        }
        let seg = self.base().st_transaction_bytes();
        let segs = segment_count(addrs, width, mask, seg);
        stats.gm_st_requests += 1;
        stats.gm_st_transactions += segs;
        stats.gm_st_bytes_bus += segs * seg;
        stats.gm_st_bytes_useful += mask.count() as u64 * width;
    }

    /// Device warp load of `W` raw bytes per lane (used by the short-data-
    /// type extension: `W` = 2 models `fp16`, `W` = 1 models `int8`).
    ///
    /// Faults like [`GmPlane::warp_ld`].
    pub(crate) fn warp_ld_bytes<const W: usize>(
        &self,
        stats: &mut KernelStats,
        site: Site,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [[u8; W]; WARP_SIZE] {
        let width = W as u64;
        let mut out = [[0u8; W]; WARP_SIZE];
        for lane in mask.iter() {
            self.read_into(addrs[lane], &mut out[lane], site, lane);
        }
        let seg = self.base().ld_transaction_bytes();
        let segs = segment_count(addrs, width, mask, seg);
        stats.gm_ld_requests += 1;
        stats.gm_ld_transactions += segs;
        stats.gm_ld_bytes_bus += segs * seg;
        stats.gm_ld_bytes_useful += mask.count() as u64 * width;
        out
    }

    /// Device warp store of `W` raw bytes per lane.
    ///
    /// Faults like [`GmPlane::warp_st`].
    pub(crate) fn warp_st_bytes<const W: usize>(
        &mut self,
        stats: &mut KernelStats,
        site: Site,
        addrs: &WarpAddrs,
        values: &[[u8; W]; WARP_SIZE],
        mask: LaneMask,
    ) {
        let width = W as u64;
        for lane in mask.iter() {
            self.write(addrs[lane], &values[lane], site, lane);
        }
        let seg = self.base().st_transaction_bytes();
        let segs = segment_count(addrs, width, mask, seg);
        stats.gm_st_requests += 1;
        stats.gm_st_transactions += segs;
        stats.gm_st_bytes_bus += segs * seg;
        stats.gm_st_bytes_useful += mask.count() as u64 * width;
    }
}

/// A thread block's port to constant memory.
#[derive(Debug)]
pub(crate) enum CmPlane<'a> {
    /// Serial execution: first-touch misses are counted against the
    /// launch-scoped cache state inside [`ConstantMemory`] as they happen.
    Direct(&'a mut ConstantMemory),
    /// Parallel execution: the block records which lines it touched;
    /// misses are counted at merge time as the ordered union of all
    /// blocks' sets (exactly the serial count, since the cache model
    /// never evicts within a launch).
    Shared {
        base: &'a ConstantMemory,
        touched: HashSet<u64>,
    },
}

impl<'a> CmPlane<'a> {
    fn base(&self) -> &ConstantMemory {
        match self {
            CmPlane::Direct(cm) => cm,
            CmPlane::Shared { base, .. } => base,
        }
    }

    /// Consumes a shared plane, returning the touched-line set (`None`
    /// for direct planes, whose misses were counted inline).
    pub(crate) fn into_touched_lines(self) -> Option<HashSet<u64>> {
        match self {
            CmPlane::Direct(_) => None,
            CmPlane::Shared { touched, .. } => Some(touched),
        }
    }

    /// Device warp load of one `f32` per lane.
    ///
    /// Cost model: `d` distinct active addresses cost `d - 1` serialization
    /// cycles (a fully-uniform read is free); each first-touched cache line
    /// counts one miss (deferred to merge time in `Shared` mode).
    ///
    /// An active lane reading outside constant memory (or, under memcheck,
    /// reading never-written constants) raises a
    /// [`DeviceFault`](crate::DeviceFault) contained at the block boundary.
    pub(crate) fn warp_ld_f32(
        &mut self,
        stats: &mut KernelStats,
        site: Site,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [f32; WARP_SIZE] {
        let mut out = [0.0f32; WARP_SIZE];
        let mut distinct = [u64::MAX; WARP_SIZE];
        let mut n = 0usize;
        let line_bytes = self.base().line_bytes();
        for lane in mask.iter() {
            let a = addrs[lane];
            out[lane] = self.base().read_f32(a, site, lane);
            if !distinct[..n].contains(&a) {
                distinct[n] = a;
                n += 1;
                let line = a / line_bytes;
                match self {
                    CmPlane::Direct(cm) => {
                        if cm.touch_line(line) {
                            stats.cm_misses += 1;
                        }
                    }
                    CmPlane::Shared { touched, .. } => {
                        touched.insert(line);
                    }
                }
            }
        }
        stats.cm_requests += 1;
        stats.cm_cycles += (n as u64).saturating_sub(1);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPayload;
    use crate::warp::{lane_addrs, lane_addrs_uniform};

    fn gm() -> GlobalMemory {
        GlobalMemory::new(1 << 20, 128, 32)
    }

    fn seeded(gm: &mut GlobalMemory, n: u64) -> crate::mem::GmBuf {
        let buf = gm.alloc_f32(n).unwrap();
        let vals: Vec<f32> = (0..n).map(|i| i as f32).collect();
        gm.write_f32s(buf, 0, &vals).unwrap();
        buf
    }

    #[test]
    fn journaled_reads_see_base_data() {
        let mut m = gm();
        let buf = seeded(&mut m, 64);
        let plane = GmPlane::Journaled {
            base: &m,
            journal: WriteJournal::new(),
        };
        let mut stats = KernelStats::default();
        let out = plane.warp_ld::<1>(
            &mut stats,
            Site::ZERO,
            &lane_addrs(buf.f32_addr(0), 4),
            LaneMask::ALL,
        );
        assert_eq!(out[5][0], 5.0);
        assert_eq!(stats.gm_ld_transactions, 1);
    }

    #[test]
    fn journaled_block_reads_its_own_writes() {
        let mut m = gm();
        let buf = seeded(&mut m, 64);
        let mut plane = GmPlane::Journaled {
            base: &m,
            journal: WriteJournal::new(),
        };
        let mut stats = KernelStats::default();
        let addrs = lane_addrs(buf.f32_addr(0), 4);
        let vals: [[f32; 1]; WARP_SIZE] = std::array::from_fn(|l| [l as f32 + 100.0]);
        plane.warp_st::<1>(&mut stats, Site::ZERO, &addrs, &vals, LaneMask::ALL);
        let back = plane.warp_ld::<1>(&mut stats, Site::ZERO, &addrs, LaneMask::ALL);
        assert_eq!(back[7][0], 107.0);
        // The base is untouched until the journal is replayed.
        assert_eq!(m.read_f32s(buf, 7, 1).unwrap()[0], 7.0);
    }

    #[test]
    fn journal_replay_matches_direct_execution() {
        // Same store sequence through Direct and Journaled planes must
        // leave identical memory and counters.
        let run = |journaled: bool| -> (Vec<f32>, KernelStats) {
            let mut m = gm();
            let buf = seeded(&mut m, 64);
            let mut stats = KernelStats::default();
            let addrs = lane_addrs(buf.f32_addr(0), 4);
            let v1: [[f32; 1]; WARP_SIZE] = std::array::from_fn(|l| [l as f32 * 2.0]);
            let v2: [[f32; 1]; WARP_SIZE] = std::array::from_fn(|l| [l as f32 * 3.0]);
            if journaled {
                let mut plane = GmPlane::Journaled {
                    base: &m,
                    journal: WriteJournal::new(),
                };
                plane.warp_st::<1>(&mut stats, Site::ZERO, &addrs, &v1, LaneMask::ALL);
                plane.warp_st::<1>(&mut stats, Site::ZERO, &addrs, &v2, LaneMask::first(8));
                let journal = plane.into_journal().unwrap();
                m.apply_journal(&journal);
            } else {
                let mut plane = GmPlane::Direct(&mut m);
                plane.warp_st::<1>(&mut stats, Site::ZERO, &addrs, &v1, LaneMask::ALL);
                plane.warp_st::<1>(&mut stats, Site::ZERO, &addrs, &v2, LaneMask::first(8));
            }
            (m.read_f32s(buf, 0, 64).unwrap(), stats)
        };
        let (direct_mem, direct_stats) = run(false);
        let (journal_mem, journal_stats) = run(true);
        assert_eq!(direct_mem, journal_mem);
        assert_eq!(direct_stats, journal_stats);
    }

    #[test]
    fn journaled_uninit_check_honors_own_writes() {
        let mut m = gm();
        m.enable_uninit_tracking(false);
        let buf = m.alloc_f32(32).unwrap();
        let mut plane = GmPlane::Journaled {
            base: &m,
            journal: WriteJournal::new(),
        };
        let mut stats = KernelStats::default();
        let addrs = lane_addrs(buf.f32_addr(0), 4);
        let vals: [[f32; 1]; WARP_SIZE] = std::array::from_fn(|l| [l as f32]);
        // Nothing in the base shadow, but the block's own journal covers
        // the bytes: the read-back is clean.
        plane.warp_st::<1>(&mut stats, Site::ZERO, &addrs, &vals, LaneMask::ALL);
        let back = plane.warp_ld::<1>(&mut stats, Site::ZERO, &addrs, LaneMask::ALL);
        assert_eq!(back[9][0], 9.0);
    }

    #[test]
    fn journaled_uninit_read_raises() {
        crate::fault::install_quiet_hook();
        let payload = std::panic::catch_unwind(|| {
            let mut m = gm();
            m.enable_uninit_tracking(false);
            let buf = m.alloc_f32(32).unwrap();
            let plane = GmPlane::Journaled {
                base: &m,
                journal: WriteJournal::new(),
            };
            let mut stats = KernelStats::default();
            plane.warp_ld::<1>(
                &mut stats,
                Site::ZERO,
                &lane_addrs(buf.f32_addr(0), 4),
                LaneMask::ALL,
            );
        })
        .unwrap_err();
        let p = payload.downcast::<FaultPayload>().unwrap();
        assert!(matches!(p.kind, FaultKind::UninitializedRead { .. }));
    }

    #[test]
    fn ro_cache_hits_do_not_count_bus_traffic() {
        let mut m = gm();
        let buf = seeded(&mut m, 64);
        let plane = GmPlane::Direct(&mut m);
        let mut ro = RoCache::new(16);
        let mut stats = KernelStats::default();
        let addrs = lane_addrs(buf.f32_addr(0), 4);
        plane.warp_ld_ro::<1>(&mut stats, &mut ro, Site::ZERO, &addrs, LaneMask::ALL);
        plane.warp_ld_ro::<1>(&mut stats, &mut ro, Site::ZERO, &addrs, LaneMask::ALL);
        assert_eq!(stats.gm_ld_transactions, 1); // second read fully cached
        assert_eq!(stats.gm_ro_hits, 1);
    }

    #[test]
    fn ro_cache_evicts_fifo() {
        let mut ro = RoCache::new(2);
        assert!(!ro.touch(1));
        assert!(!ro.touch(2));
        assert!(ro.touch(1));
        assert!(!ro.touch(3)); // evicts 1
        assert!(!ro.touch(1));
    }

    #[test]
    fn shared_cm_plane_defers_miss_counting() {
        let mut cm = ConstantMemory::new(1 << 16, 256);
        cm.write_f32s(0, &[1.0, 2.0]).unwrap();
        let mut plane = CmPlane::Shared {
            base: &cm,
            touched: HashSet::new(),
        };
        let mut stats = KernelStats::default();
        plane.warp_ld_f32(
            &mut stats,
            Site::ZERO,
            &lane_addrs_uniform(0),
            LaneMask::ALL,
        );
        plane.warp_ld_f32(
            &mut stats,
            Site::ZERO,
            &lane_addrs_uniform(4),
            LaneMask::ALL,
        );
        assert_eq!(stats.cm_misses, 0); // deferred
        assert_eq!(stats.cm_requests, 2);
        let touched = plane.into_touched_lines().unwrap();
        assert_eq!(touched.len(), 1); // both addresses in line 0
        assert_eq!(cm.absorb_lines(&touched), 1);
        assert_eq!(cm.absorb_lines(&touched), 0); // union: no double count
    }
}

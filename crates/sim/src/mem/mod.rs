//! Device memory spaces: global, shared and constant memory.
//!
//! Each space is both a **functional** store (kernels move real bytes through
//! it) and an **instrumented** one (every warp access records transactions,
//! bank-conflict replays or broadcast serializations into
//! [`KernelStats`](crate::KernelStats)).

pub(crate) mod constant;
pub(crate) mod dedup;
mod global;
pub mod lanes;
pub(crate) mod plane;
pub(crate) mod shadow;
mod shared;

pub use constant::ConstantMemory;
pub use global::{GlobalMemory, GmBuf};
pub use shared::{bank_conflict_cycles, BankAccessOutcome, SharedMemory};

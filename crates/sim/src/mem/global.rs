//! Global (device DRAM) memory with per-warp coalescing analysis.
//!
//! A warp memory instruction touching a set of byte ranges is serviced in
//! units of [`GpuSpec::gm_transaction_bytes`](crate::GpuSpec)-sized aligned
//! segments (128 B on all modeled parts). The number of distinct segments is
//! the *transaction count*; fully coalesced accesses (32 contiguous floats)
//! touch exactly one segment, scattered accesses touch up to 32.
//!
//! Warp-level accesses flow through a per-block
//! [`GmPlane`](crate::mem::plane::GmPlane), which either writes through to
//! this memory (serial launches) or journals stores for deterministic
//! replay (parallel launches). This type holds the storage, the allocator,
//! the host-transfer paths, and — when memcheck is enabled — the shadow
//! bitmap that tracks which bytes have ever been written.

use crate::error::{Result, SimError};
use crate::mem::plane::WriteJournal;
use crate::mem::shadow::Shadow;

/// A handle to an allocation inside [`GlobalMemory`].
///
/// Buffers are plain `(offset, len)` descriptors; copying one does not copy
/// the underlying data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GmBuf {
    offset: u64,
    bytes: u64,
}

impl GmBuf {
    /// Absolute device byte address of element `index` assuming elements of
    /// `size` bytes.
    ///
    /// This is the address-arithmetic helper kernels use; bounds are checked
    /// at access time by [`GlobalMemory`].
    pub fn addr_of(&self, index: u64, size: u64) -> u64 {
        self.offset + index * size
    }

    /// Absolute device byte address of `f32` element `index`.
    pub fn f32_addr(&self, index: u64) -> u64 {
        self.addr_of(index, 4)
    }

    /// A sub-buffer view: `bytes` bytes starting `byte_offset` into this
    /// buffer. Views alias the parent's storage (copying a `GmBuf` never
    /// copies data) — the device-side tool for batched layouts where one
    /// allocation holds per-image slots.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the buffer.
    pub fn subbuffer(&self, byte_offset: u64, bytes: u64) -> GmBuf {
        assert!(
            byte_offset + bytes <= self.bytes,
            "subbuffer {byte_offset}+{bytes} exceeds buffer of {} bytes",
            self.bytes
        );
        GmBuf {
            offset: self.offset + byte_offset,
            bytes,
        }
    }

    /// First byte address of the buffer.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Size of the buffer in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of `f32` elements that fit in the buffer.
    pub fn len_f32(&self) -> u64 {
        self.bytes / 4
    }
}

/// Byte-addressable device DRAM with transaction-level instrumentation.
///
/// Host-side transfers ([`GlobalMemory::write_f32s`],
/// [`GlobalMemory::read_f32s`]) move data without recording statistics —
/// they model `cudaMemcpy`, which the paper's measurements exclude.
/// Device-side warp accesses are only reachable through
/// [`WarpCtx`](crate::WarpCtx) and are always recorded.
#[derive(Debug)]
pub struct GlobalMemory {
    data: Vec<u8>,
    next: u64,
    capacity: u64,
    ld_transaction_bytes: u64,
    st_transaction_bytes: u64,
    ro_cache_bytes: u64,
    /// memcheck shadow: present only when uninitialized-read tracking is
    /// enabled.
    shadow: Option<Shadow>,
}

/// Alignment applied to every allocation (matches `cudaMalloc`'s 256-byte
/// guarantee, which kernels rely on for vectorized accesses).
const ALLOC_ALIGN: u64 = 256;

impl GlobalMemory {
    /// Creates a device memory of `capacity` bytes serviced in
    /// `ld_transaction_bytes` load segments and `st_transaction_bytes`
    /// store sectors, fronted by a per-SM read-only cache of
    /// `ro_cache_bytes`.
    ///
    /// Backing storage is committed lazily by the OS; creating a large
    /// device memory is cheap until pages are touched.
    pub fn new(
        capacity: u64,
        ld_transaction_bytes: u64,
        st_transaction_bytes: u64,
        ro_cache_bytes: u64,
    ) -> Self {
        assert!(
            ld_transaction_bytes.is_power_of_two() && st_transaction_bytes.is_power_of_two(),
            "transaction sizes must be powers of two"
        );
        assert!(
            ro_cache_bytes >= ld_transaction_bytes,
            "read-only cache must hold at least one line"
        );
        GlobalMemory {
            data: Vec::new(),
            next: 0,
            capacity,
            ld_transaction_bytes,
            st_transaction_bytes,
            ro_cache_bytes,
            shadow: None,
        }
    }

    /// Turns uninitialized-read tracking (memcheck) on. With
    /// `mark_existing`, every byte allocated so far is presumed valid —
    /// the conservative choice when enabling after allocations were made;
    /// without it, only writes from this point on count.
    pub fn enable_uninit_tracking(&mut self, mark_existing: bool) {
        let mut shadow = Shadow::new(self.next);
        if mark_existing {
            shadow.mark_all();
        }
        self.shadow = Some(shadow);
    }

    /// Turns uninitialized-read tracking off and drops the shadow.
    pub fn disable_uninit_tracking(&mut self) {
        self.shadow = None;
    }

    /// Load-transaction (segment) size in bytes.
    pub(crate) fn ld_transaction_bytes(&self) -> u64 {
        self.ld_transaction_bytes
    }

    /// Store-transaction (sector) size in bytes.
    pub(crate) fn st_transaction_bytes(&self) -> u64 {
        self.st_transaction_bytes
    }

    /// Line capacity of the per-SM read-only (texture) cache: its capacity
    /// in load-segment-sized lines.
    pub(crate) fn ro_capacity_lines(&self) -> usize {
        crate::pricing::ro_capacity_lines(self.ro_cache_bytes, self.ld_transaction_bytes)
    }

    /// Allocates `bytes` bytes, 256-byte aligned.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AllocTooLarge`] if the allocation does not fit.
    pub fn alloc(&mut self, bytes: u64) -> Result<GmBuf> {
        let offset = self.next.next_multiple_of(ALLOC_ALIGN);
        let end = offset.checked_add(bytes).ok_or(SimError::AllocTooLarge {
            requested: bytes,
            available: self.capacity - self.next.min(self.capacity),
            space: "global",
        })?;
        if end > self.capacity {
            return Err(SimError::AllocTooLarge {
                requested: bytes,
                available: self.capacity - self.next.min(self.capacity),
                space: "global",
            });
        }
        if self.data.len() < end as usize {
            self.data.resize(end as usize, 0);
        }
        self.next = end;
        if let Some(shadow) = &mut self.shadow {
            shadow.grow(end);
        }
        Ok(GmBuf { offset, bytes })
    }

    /// Allocates a buffer of `len` `f32` elements.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AllocTooLarge`] if the allocation does not fit.
    pub fn alloc_f32(&mut self, len: u64) -> Result<GmBuf> {
        self.alloc(len * 4)
    }

    /// Bytes allocated so far (including alignment padding).
    pub fn allocated_bytes(&self) -> u64 {
        self.next
    }

    /// Host write of consecutive `f32`s starting at element `elem_offset` of
    /// `buf` (models `cudaMemcpy` host-to-device; not counted in stats).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HostTransferOutOfBounds`] if the range exceeds
    /// the buffer.
    pub fn write_f32s(&mut self, buf: GmBuf, elem_offset: u64, values: &[f32]) -> Result<()> {
        let byte_off = elem_offset * 4;
        let byte_len = values.len() as u64 * 4;
        if byte_off + byte_len > buf.bytes {
            return Err(SimError::HostTransferOutOfBounds {
                offset: byte_off,
                len: byte_len,
                buffer: buf.bytes,
            });
        }
        let start = (buf.offset + byte_off) as usize;
        for (i, v) in values.iter().enumerate() {
            self.data[start + i * 4..start + i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        self.mark_init(buf.offset + byte_off, byte_len);
        Ok(())
    }

    /// Host read of `len` consecutive `f32`s starting at element
    /// `elem_offset` of `buf` (models `cudaMemcpy` device-to-host).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HostTransferOutOfBounds`] if the range exceeds
    /// the buffer.
    pub fn read_f32s(&self, buf: GmBuf, elem_offset: u64, len: usize) -> Result<Vec<f32>> {
        let byte_off = elem_offset * 4;
        let byte_len = len as u64 * 4;
        if byte_off + byte_len > buf.bytes {
            return Err(SimError::HostTransferOutOfBounds {
                offset: byte_off,
                len: byte_len,
                buffer: buf.bytes,
            });
        }
        let start = (buf.offset + byte_off) as usize;
        Ok((0..len)
            .map(|i| {
                f32::from_le_bytes(
                    self.data[start + i * 4..start + i * 4 + 4]
                        .try_into()
                        .unwrap(),
                )
            })
            .collect())
    }

    /// Fills an entire buffer with a constant (host-side, uncounted).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HostTransferOutOfBounds`] if the buffer
    /// descriptor does not lie inside allocated device memory (a corrupt
    /// or stale `GmBuf`).
    pub fn fill_f32(&mut self, buf: GmBuf, value: f32) -> Result<()> {
        if buf.offset + buf.bytes > self.next {
            return Err(SimError::HostTransferOutOfBounds {
                offset: buf.offset,
                len: buf.bytes,
                buffer: self.next,
            });
        }
        let start = buf.offset as usize;
        let end = (buf.offset + buf.bytes) as usize;
        for chunk in self.data[start..end].chunks_exact_mut(4) {
            chunk.copy_from_slice(&value.to_le_bytes());
        }
        self.mark_init(buf.offset, buf.bytes);
        Ok(())
    }

    /// One past the last device-addressable byte: the bound every device
    /// access is checked against (by [`GmPlane`](crate::mem::plane::GmPlane),
    /// which raises a typed [`DeviceFault`](crate::DeviceFault) on
    /// violation).
    pub(crate) fn device_limit(&self) -> u64 {
        self.next
    }

    /// The memcheck shadow, when tracking is enabled.
    pub(crate) fn shadow(&self) -> Option<&Shadow> {
        self.shadow.as_ref()
    }

    /// Marks `[addr, addr + width)` as initialized (no-op when tracking is
    /// off).
    pub(crate) fn mark_init(&mut self, addr: u64, width: u64) {
        if let Some(shadow) = &mut self.shadow {
            shadow.mark(addr, width);
        }
    }

    /// Raw storage view (callers bounds-check against
    /// [`GlobalMemory::device_limit`] first).
    pub(crate) fn bytes(&self, addr: u64, len: usize) -> &[u8] {
        &self.data[addr as usize..addr as usize + len]
    }

    /// Mutable raw storage view.
    pub(crate) fn bytes_mut(&mut self, addr: u64, len: usize) -> &mut [u8] {
        &mut self.data[addr as usize..addr as usize + len]
    }

    /// Replays a block's journaled stores into the backing storage, one
    /// maximal run of written bytes at a time. The journal's pages hold
    /// each byte's *last* value, so this address-ordered replay leaves
    /// memory (and the memcheck shadow) identical to replaying the stores
    /// in issue order — while touching each byte once. The launcher calls
    /// this once per block in block-id order, which reproduces the serial
    /// cross-block store order exactly. Journal entries were bounds-checked
    /// when the block recorded them.
    pub(crate) fn apply_journal(&mut self, journal: &WriteJournal) {
        let data = &mut self.data;
        let shadow = &mut self.shadow;
        journal.for_each_run(|addr, bytes| {
            data[addr as usize..addr as usize + bytes.len()].copy_from_slice(bytes);
            if let Some(shadow) = shadow {
                shadow.mark(addr, bytes.len() as u64);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{AccessKind, FaultKind, MemSpace, Site};
    use crate::mem::plane::GmPlane;
    use crate::spec::WARP_SIZE;
    use crate::stats::KernelStats;
    use crate::warp::{lane_addrs, lane_addrs_from, lane_addrs_uniform, LaneMask};

    fn gm() -> GlobalMemory {
        GlobalMemory::new(1 << 20, 128, 32, 48 * 1024)
    }

    #[test]
    fn alloc_is_aligned_and_bounded() {
        let mut m = gm();
        let a = m.alloc(100).unwrap();
        let b = m.alloc(100).unwrap();
        assert_eq!(a.offset() % 256, 0);
        assert_eq!(b.offset() % 256, 0);
        assert!(b.offset() >= a.offset() + 100);
        assert!(m.alloc(2 << 20).is_err());
    }

    #[test]
    fn subbuffer_views_alias_storage() {
        let mut m = gm();
        let buf = m.alloc_f32(16).unwrap();
        m.write_f32s(buf, 0, &(0..16).map(|i| i as f32).collect::<Vec<_>>())
            .unwrap();
        let view = buf.subbuffer(8 * 4, 4 * 4);
        assert_eq!(m.read_f32s(view, 0, 4).unwrap(), vec![8.0, 9.0, 10.0, 11.0]);
        assert_eq!(view.len_f32(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds buffer")]
    fn subbuffer_bounds_checked() {
        let mut m = gm();
        let buf = m.alloc_f32(4).unwrap();
        buf.subbuffer(8, 16);
    }

    #[test]
    fn host_roundtrip() {
        let mut m = gm();
        let buf = m.alloc_f32(8).unwrap();
        let vals: Vec<f32> = (0..8).map(|i| i as f32 * 1.5).collect();
        m.write_f32s(buf, 0, &vals).unwrap();
        assert_eq!(m.read_f32s(buf, 0, 8).unwrap(), vals);
        // Partial read with offset.
        assert_eq!(m.read_f32s(buf, 2, 2).unwrap(), vec![3.0, 4.5]);
    }

    #[test]
    fn host_transfer_bounds_checked() {
        let mut m = gm();
        let buf = m.alloc_f32(4).unwrap();
        assert!(m.write_f32s(buf, 3, &[0.0, 0.0]).is_err());
        assert!(m.read_f32s(buf, 0, 5).is_err());
    }

    #[test]
    fn fill_sets_every_element() {
        let mut m = gm();
        let buf = m.alloc_f32(16).unwrap();
        m.fill_f32(buf, 7.5).unwrap();
        assert!(m.read_f32s(buf, 0, 16).unwrap().iter().all(|&v| v == 7.5));
    }

    #[test]
    fn fill_rejects_corrupt_descriptor() {
        let mut m = gm();
        let _real = m.alloc_f32(16).unwrap();
        // A descriptor from a different (larger) device would point past
        // everything this one allocated.
        let stale = GmBuf {
            offset: 1 << 18,
            bytes: 64,
        };
        assert!(matches!(
            m.fill_f32(stale, 0.0),
            Err(SimError::HostTransferOutOfBounds { .. })
        ));
    }

    #[test]
    fn coalesced_load_is_one_transaction() {
        let mut m = gm();
        let buf = m.alloc_f32(64).unwrap();
        let vals: Vec<f32> = (0..64).map(|i| i as f32).collect();
        m.write_f32s(buf, 0, &vals).unwrap();
        let mut stats = KernelStats::default();
        // 32 lanes x 4 B contiguous from a 128 B-aligned base = 1 segment.
        let addrs = lane_addrs(buf.f32_addr(0), 4);
        let plane = GmPlane::Direct(&mut m);
        let out = plane.warp_ld::<1>(&mut stats, Site::ZERO, &addrs, LaneMask::ALL);
        assert_eq!(out[5][0], 5.0);
        assert_eq!(stats.gm_ld_transactions, 1);
        assert_eq!(stats.gm_ld_bytes_bus, 128);
        assert_eq!(stats.gm_ld_bytes_useful, 128);
    }

    #[test]
    fn strided_load_touches_many_segments() {
        let mut m = gm();
        let buf = m.alloc_f32(32 * 64).unwrap();
        let mut stats = KernelStats::default();
        // Stride of 256 B: every lane in its own segment.
        let addrs = lane_addrs(buf.f32_addr(0), 256);
        let plane = GmPlane::Direct(&mut m);
        plane.warp_ld::<1>(&mut stats, Site::ZERO, &addrs, LaneMask::ALL);
        assert_eq!(stats.gm_ld_transactions, 32);
        assert!(
            (KernelStats {
                gm_ld_bytes_bus: stats.gm_ld_bytes_bus,
                gm_ld_bytes_useful: stats.gm_ld_bytes_useful,
                ..Default::default()
            })
            .gm_coalescing_efficiency()
                < 0.05
        );
    }

    #[test]
    fn vector_load_counts_wide_segments() {
        let mut m = gm();
        let buf = m.alloc_f32(64).unwrap();
        let mut stats = KernelStats::default();
        // 32 lanes x float2 contiguous = 256 B = 2 segments.
        let addrs = lane_addrs(buf.f32_addr(0), 8);
        let plane = GmPlane::Direct(&mut m);
        plane.warp_ld::<2>(&mut stats, Site::ZERO, &addrs, LaneMask::ALL);
        assert_eq!(stats.gm_ld_transactions, 2);
        assert_eq!(stats.gm_ld_bytes_useful, 256);
    }

    #[test]
    fn masked_lanes_do_not_count() {
        let mut m = gm();
        let buf = m.alloc_f32(64).unwrap();
        let mut stats = KernelStats::default();
        let addrs = lane_addrs(buf.f32_addr(0), 4);
        let plane = GmPlane::Direct(&mut m);
        plane.warp_ld::<1>(&mut stats, Site::ZERO, &addrs, LaneMask::first(8));
        assert_eq!(stats.gm_ld_transactions, 1);
        assert_eq!(stats.gm_ld_bytes_useful, 32);
    }

    #[test]
    fn uniform_access_is_one_transaction() {
        let mut m = gm();
        let buf = m.alloc_f32(64).unwrap();
        let mut stats = KernelStats::default();
        let addrs = lane_addrs_uniform(buf.f32_addr(3));
        let plane = GmPlane::Direct(&mut m);
        plane.warp_ld::<1>(&mut stats, Site::ZERO, &addrs, LaneMask::ALL);
        assert_eq!(stats.gm_ld_transactions, 1);
    }

    #[test]
    fn store_roundtrips_and_counts() {
        let mut m = gm();
        let buf = m.alloc_f32(32).unwrap();
        let mut stats = KernelStats::default();
        let addrs = lane_addrs(buf.f32_addr(0), 4);
        let vals: [[f32; 1]; WARP_SIZE] = std::array::from_fn(|l| [l as f32]);
        let mut plane = GmPlane::Direct(&mut m);
        plane.warp_st::<1>(&mut stats, Site::ZERO, &addrs, &vals, LaneMask::ALL);
        // 128 contiguous bytes through 32-byte store sectors.
        assert_eq!(stats.gm_st_transactions, 4);
        assert_eq!(stats.gm_st_bytes_bus, 128);
        assert_eq!(m.read_f32s(buf, 31, 1).unwrap()[0], 31.0);
    }

    #[test]
    fn misaligned_warp_spans_two_segments() {
        let mut m = gm();
        let buf = m.alloc_f32(64).unwrap();
        let mut stats = KernelStats::default();
        // Start 16 bytes into a segment: contiguous 128 B now straddles two.
        let addrs = lane_addrs(buf.f32_addr(4), 4);
        let plane = GmPlane::Direct(&mut m);
        plane.warp_ld::<1>(&mut stats, Site::ZERO, &addrs, LaneMask::ALL);
        assert_eq!(stats.gm_ld_transactions, 2);
    }

    /// Runs `f`, expecting it to raise a device fault; returns the kind.
    fn trap(f: impl FnOnce() + std::panic::UnwindSafe) -> FaultKind {
        crate::fault::install_quiet_hook();
        let payload = std::panic::catch_unwind(f).unwrap_err();
        payload
            .downcast::<crate::fault::FaultPayload>()
            .expect("expected a typed device fault")
            .kind
    }

    #[test]
    fn device_oob_raises_typed_fault() {
        let kind = trap(|| {
            let mut m = gm();
            let buf = m.alloc_f32(4).unwrap();
            let mut stats = KernelStats::default();
            let addrs = lane_addrs(buf.f32_addr(0), 4);
            let plane = GmPlane::Direct(&mut m);
            plane.warp_ld::<1>(&mut stats, Site::ZERO, &addrs, LaneMask::ALL); // lanes 4..32 OOB
        });
        match kind {
            FaultKind::OutOfBounds {
                space: MemSpace::Global,
                access: AccessKind::Load,
                ..
            } => {}
            other => panic!("unexpected fault {other:?}"),
        }
    }

    #[test]
    fn uninit_read_detected_when_tracking() {
        let kind = trap(|| {
            let mut m = gm();
            m.enable_uninit_tracking(false);
            let buf = m.alloc_f32(32).unwrap();
            // Initialize only the first 16 elements.
            m.write_f32s(buf, 0, &[1.0; 16]).unwrap();
            let mut stats = KernelStats::default();
            let addrs = lane_addrs(buf.f32_addr(0), 4);
            let plane = GmPlane::Direct(&mut m);
            plane.warp_ld::<1>(&mut stats, Site::ZERO, &addrs, LaneMask::ALL);
        });
        match kind {
            FaultKind::UninitializedRead {
                space: MemSpace::Global,
                addr,
                ..
            } => assert_eq!(addr % 256, 64), // first untouched element
            other => panic!("unexpected fault {other:?}"),
        }
    }

    #[test]
    fn device_stores_mark_shadow() {
        let mut m = gm();
        m.enable_uninit_tracking(false);
        let buf = m.alloc_f32(32).unwrap();
        let mut stats = KernelStats::default();
        let addrs = lane_addrs(buf.f32_addr(0), 4);
        let vals: [[f32; 1]; WARP_SIZE] = std::array::from_fn(|l| [l as f32]);
        let mut plane = GmPlane::Direct(&mut m);
        plane.warp_st::<1>(&mut stats, Site::ZERO, &addrs, &vals, LaneMask::ALL);
        // Reading back what the device just wrote is clean.
        let out = plane.warp_ld::<1>(&mut stats, Site::ZERO, &addrs, LaneMask::ALL);
        assert_eq!(out[3][0], 3.0);
    }

    #[test]
    fn conservative_enable_marks_existing_allocations() {
        let mut m = gm();
        let buf = m.alloc_f32(8).unwrap();
        m.enable_uninit_tracking(true);
        let mut stats = KernelStats::default();
        let addrs = lane_addrs(buf.f32_addr(0), 4);
        let plane = GmPlane::Direct(&mut m);
        // No fault: pre-existing allocation presumed initialized.
        plane.warp_ld::<1>(&mut stats, Site::ZERO, &addrs, LaneMask::first(8));
    }

    #[test]
    fn byte_access_roundtrip() {
        let mut m = gm();
        let buf = m.alloc(64).unwrap();
        let mut stats = KernelStats::default();
        let addrs = lane_addrs(buf.offset(), 2);
        let vals: [[u8; 2]; WARP_SIZE] = std::array::from_fn(|l| [l as u8, 0xAB]);
        let mut plane = GmPlane::Direct(&mut m);
        plane.warp_st_bytes::<2>(&mut stats, Site::ZERO, &addrs, &vals, LaneMask::ALL);
        let back = plane.warp_ld_bytes::<2>(&mut stats, Site::ZERO, &addrs, LaneMask::ALL);
        assert_eq!(back[7], [7, 0xAB]);
        // 64 B contiguous: two 32-byte store sectors, one 128-byte load
        // segment.
        assert_eq!(stats.gm_st_transactions, 2);
        assert_eq!(stats.gm_ld_transactions, 1);
        assert_eq!(stats.gm_ld_bytes_useful, 64);
    }

    #[test]
    fn scattered_from_fn_addresses() {
        let mut m = gm();
        let buf = m.alloc_f32(1024).unwrap();
        let mut stats = KernelStats::default();
        // Two clusters of 16 lanes: 2 segments.
        let addrs = lane_addrs_from(|l| {
            if l < 16 {
                buf.f32_addr(l as u64)
            } else {
                buf.f32_addr(512 + l as u64)
            }
        });
        let plane = GmPlane::Direct(&mut m);
        plane.warp_ld::<1>(&mut stats, Site::ZERO, &addrs, LaneMask::ALL);
        assert_eq!(stats.gm_ld_transactions, 2);
    }
}

//! Shared memory with the banked-access model at the heart of the paper.
//!
//! Shared memory is divided into [`GpuSpec::smem_banks`](crate::GpuSpec)
//! banks of [`BankWidth`](crate::BankWidth) bytes each, interleaved at
//! bank-word granularity:
//!
//! ```text
//! bank(addr) = (addr / bank_width) mod banks
//! word(addr) =  addr / bank_width
//! ```
//!
//! One warp access is serviced in *replays*: all lanes whose requests fall in
//! distinct words of the same bank serialize, while lanes hitting the *same*
//! word are served together by the broadcast mechanism. The access therefore
//! costs `max over banks of (distinct words in that bank)` cycles, and each
//! cycle can deliver at most `banks x bank_width` bytes.
//!
//! This reproduces the paper's Fig. 1 exactly: on Kepler (8-byte banks), 32
//! lanes reading consecutive `float`s hit only 16 distinct words — the access
//! completes in one cycle but moves 128 useful bytes where the fabric could
//! deliver 256. The *matched* pattern (each lane reads a `float2`) moves the
//! full 256 bytes per cycle, doubling effective bandwidth.
//!
//! ## Sanitizer hooks
//!
//! When the launcher enables sanitizer tools (see
//! [`SanitizerMode`](crate::SanitizerMode)), each block's shared memory
//! additionally carries:
//!
//! * a memcheck shadow (1 bit/byte) — reading a byte no warp has written
//!   since the block started raises an uninitialized-read fault, exactly
//!   like `cuda-memcheck --tool initcheck`;
//! * a racecheck shadow — per byte, the last write and the readers of the
//!   **current barrier interval** (phase). The simulator executes warps
//!   warp-synchronously, so intra-warp ordering is defined and exempt; a
//!   cross-warp write/write, read-after-write, or write-after-read on the
//!   same byte *within one phase* is a hazard, because nothing orders the
//!   two warps between barriers. Accesses separated by `__syncthreads()`
//!   land in different phases and never conflict.
//!
//! All violations raise a typed [`DeviceFault`](crate::DeviceFault)
//! contained at the block boundary instead of panicking the process.

use crate::fault::{self, AccessKind, FaultKind, Hazard, MemSpace, Site};
use crate::mem::shadow::Shadow;
use crate::mem::{dedup, lanes};
use crate::spec::{BankWidth, WARP_SIZE};
use crate::stats::KernelStats;
use crate::warp::{LaneMask, WarpAddrs};

/// Result of analyzing one warp access against the bank model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankAccessOutcome {
    /// Cycles the access occupies the shared-memory pipeline (>= 1).
    pub cycles: u64,
    /// Whether at least two active lanes were served by a same-word
    /// broadcast.
    pub broadcast: bool,
}

/// Computes the cost of one warp access of `width` bytes per lane under the
/// banked model.
///
/// Exposed publicly so that analytic code (and tests) can reason about
/// access patterns without constructing a memory.
///
/// # Examples
///
/// ```
/// use kconv_sim::{bank_conflict_cycles, lane_addrs, BankWidth, LaneMask};
/// // Kepler, conventional pattern: 32 consecutive floats. One cycle
/// // (no conflict) but only half the fabric is used.
/// let out = bank_conflict_cycles(
///     &lane_addrs(0, 4), 4, LaneMask::ALL, 32, BankWidth::B8);
/// assert_eq!(out.cycles, 1);
/// assert!(out.broadcast); // lane pairs share an 8-byte word
///
/// // Two-way conflict: lanes stride by a full row of 32 words.
/// let out = bank_conflict_cycles(
///     &lane_addrs(0, 32 * 8), 4, LaneMask::ALL, 32, BankWidth::B8);
/// assert_eq!(out.cycles, 32); // every lane in bank 0, distinct words
/// ```
pub fn bank_conflict_cycles(
    addrs: &WarpAddrs,
    width: u64,
    mask: LaneMask,
    banks: u32,
    bank_width: BankWidth,
) -> BankAccessOutcome {
    let bw = bank_width.bytes();
    let nb = banks as u64;
    debug_assert!(nb <= 64, "at most 64 banks supported");
    // Every real bank count is a power of two; sparing the hardware divide
    // matters at this call frequency.
    let pow2 = nb.is_power_of_two();

    // Fast path: one fused lane-engine call both proves the common shape
    // (every active lane's span lies in one bank word and the warp's word
    // range fits a two-word bitmap — true of every aligned scalar or
    // vector access, i.e. nearly always) and hands back the distinct
    // words themselves. The bank histogram then walks only the set bits —
    // a coalesced float warp touches 4–8 distinct words, not 32. With one
    // word per lane, a warp broadcast (some word revisited) is exactly
    // `distinct < active lanes`, and with at most 32 distinct words the
    // u8 counters cannot saturate.
    if let Some(occ) = lanes::occupancy(addrs, width, mask, bw) {
        let mut per_bank = [0u8; 64];
        let mut max_words = 1u8;
        let mut distinct = 0u32;
        for (wi, &word) in occ.words.iter().enumerate() {
            distinct += word.count_ones();
            let mut bits = word;
            while bits != 0 {
                let w = occ.lo + 64 * wi as u64 + u64::from(bits.trailing_zeros());
                bits &= bits - 1;
                let b = if pow2 { w & (nb - 1) } else { w % nb } as usize;
                per_bank[b] += 1;
                max_words = max_words.max(per_bank[b]);
            }
        }
        return BankAccessOutcome {
            cycles: u64::from(max_words),
            broadcast: distinct < mask.count(),
        };
    }

    // General path: distinct bank-words touched by the warp, via the shared
    // bitmap dedup (a revisited word is a same-word broadcast, a fresh one
    // loads its bank). Handles misaligned and multi-word-per-lane spans,
    // and the empty mask (visits nothing: one cycle, no broadcast).
    let mut per_bank = [0u32; 64];
    let mut max_words = 1u32;
    let mut broadcast = false;
    dedup::for_each_unit(addrs, width, mask, bw, |w, first_visit| {
        if first_visit {
            let b = if pow2 { w & (nb - 1) } else { w % nb } as usize;
            per_bank[b] += 1;
            max_words = max_words.max(per_bank[b]);
        } else {
            broadcast = true;
        }
    });
    BankAccessOutcome {
        cycles: u64::from(max_words),
        broadcast,
    }
}

/// Sentinel: no warp recorded.
const NEVER: u32 = u32::MAX;

/// Per-byte racecheck state: the last write and up to two distinct reader
/// warps of the current barrier phase.
#[derive(Debug, Clone, Copy)]
struct RaceCell {
    w_phase: u32,
    w_warp: u32,
    r_phase: u32,
    /// First warp to read this byte in `r_phase`.
    r_warp: u32,
    /// A second, distinct warp that read it in `r_phase` (if any). Two
    /// distinct readers are enough: any writer conflicts with at least one.
    r_warp2: u32,
}

const FRESH_CELL: RaceCell = RaceCell {
    w_phase: NEVER,
    w_warp: NEVER,
    r_phase: NEVER,
    r_warp: NEVER,
    r_warp2: NEVER,
};

/// Byte-granular cross-warp hazard detector for one block's shared memory.
#[derive(Debug)]
struct RaceShadow {
    cells: Vec<RaceCell>,
}

impl RaceShadow {
    fn new(len: usize) -> Self {
        RaceShadow {
            cells: vec![FRESH_CELL; len],
        }
    }

    fn on_read(&mut self, addr: u64, width: u64, site: Site, lane: usize) {
        let warp = site.warp as u32;
        for b in addr..addr + width {
            let c = &mut self.cells[b as usize];
            if c.w_phase == site.phase && c.w_warp != warp {
                fault::raise(
                    FaultKind::RaceHazard {
                        hazard: Hazard::ReadAfterWrite,
                        addr: b,
                        other_warp: c.w_warp as usize,
                    },
                    site.warp,
                    lane,
                );
            }
            if c.r_phase != site.phase {
                c.r_phase = site.phase;
                c.r_warp = warp;
                c.r_warp2 = NEVER;
            } else if c.r_warp != warp && c.r_warp2 == NEVER {
                c.r_warp2 = warp;
            }
        }
    }

    fn on_write(&mut self, addr: u64, width: u64, site: Site, lane: usize) {
        let warp = site.warp as u32;
        for b in addr..addr + width {
            let c = &mut self.cells[b as usize];
            if c.w_phase == site.phase && c.w_warp != warp {
                fault::raise(
                    FaultKind::RaceHazard {
                        hazard: Hazard::WriteWrite,
                        addr: b,
                        other_warp: c.w_warp as usize,
                    },
                    site.warp,
                    lane,
                );
            }
            if c.r_phase == site.phase {
                let other = if c.r_warp != NEVER && c.r_warp != warp {
                    Some(c.r_warp)
                } else if c.r_warp2 != NEVER && c.r_warp2 != warp {
                    Some(c.r_warp2)
                } else {
                    None
                };
                if let Some(other_warp) = other {
                    fault::raise(
                        FaultKind::RaceHazard {
                            hazard: Hazard::WriteAfterRead,
                            addr: b,
                            other_warp: other_warp as usize,
                        },
                        site.warp,
                        lane,
                    );
                }
            }
            c.w_phase = site.phase;
            c.w_warp = warp;
        }
    }
}

/// Per-thread-block shared memory (functional store + bank instrumentation).
///
/// Created by the launcher for each block with the size requested in the
/// [`LaunchConfig`](crate::LaunchConfig); device code addresses it with
/// block-local byte offsets.
#[derive(Debug)]
pub struct SharedMemory {
    data: Vec<u8>,
    banks: u32,
    bank_width: BankWidth,
    shadow: Option<Shadow>,
    races: Option<RaceShadow>,
}

impl SharedMemory {
    /// Creates a zero-initialized shared memory of `bytes` bytes.
    pub fn new(bytes: u32, banks: u32, bank_width: BankWidth) -> Self {
        SharedMemory {
            data: vec![0; bytes as usize],
            banks,
            bank_width,
            shadow: None,
            races: None,
        }
    }

    /// Enables sanitizer tools for this block's shared memory: `memcheck`
    /// tracks uninitialized reads, `racecheck` tracks cross-warp hazards
    /// between barriers. Both start from a fresh (nothing written) state —
    /// shared memory has no defined contents at block start.
    pub(crate) fn with_sanitizer(mut self, memcheck: bool, racecheck: bool) -> Self {
        if memcheck {
            self.shadow = Some(Shadow::new(self.data.len() as u64));
        }
        if racecheck {
            self.races = Some(RaceShadow::new(self.data.len()));
        }
        self
    }

    /// Size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.data.len()
    }

    /// Raises a typed fault unless `[addr, addr + width)` fits the
    /// allocation.
    fn check_range(&self, addr: u64, width: u64, access: AccessKind, site: Site, lane: usize) {
        let limit = self.data.len() as u64;
        if addr.checked_add(width).is_none_or(|end| end > limit) {
            fault::raise(
                FaultKind::OutOfBounds {
                    space: MemSpace::Shared,
                    access,
                    addr,
                    width,
                    limit,
                },
                site.warp,
                lane,
            );
        }
    }

    /// Sanitizer checks for one lane's load: bounds, race hazard, uninit.
    fn pre_read(&mut self, addr: u64, width: u64, site: Site, lane: usize) {
        self.check_range(addr, width, AccessKind::Load, site, lane);
        if let Some(races) = &mut self.races {
            races.on_read(addr, width, site, lane);
        }
        if let Some(shadow) = &self.shadow {
            if let Some(bad) = shadow.first_unmarked(addr, width) {
                fault::raise(
                    FaultKind::UninitializedRead {
                        space: MemSpace::Shared,
                        addr: bad,
                        width,
                    },
                    site.warp,
                    lane,
                );
            }
        }
    }

    /// Sanitizer checks for one lane's store: bounds, race hazard; marks
    /// the bytes initialized.
    fn pre_write(&mut self, addr: u64, width: u64, site: Site, lane: usize) {
        self.check_range(addr, width, AccessKind::Store, site, lane);
        if let Some(races) = &mut self.races {
            races.on_write(addr, width, site, lane);
        }
        if let Some(shadow) = &mut self.shadow {
            shadow.mark(addr, width);
        }
    }

    /// True when no sanitizer tool is attached and every active lane's
    /// `[addr, addr + width)` fits the allocation — the precondition for
    /// the check-free copy loops in the warp accessors. Anything else
    /// (sanitizer attached, or some lane out of bounds) takes the original
    /// per-lane path, which raises faults at exactly the same lane, in the
    /// same order, with the same partially-applied stores as before. The
    /// warp-level bound uses `saturating_add` so a wrapping address still
    /// fails into the faulting path.
    #[inline]
    fn plain_in_bounds(&self, addrs: &WarpAddrs, width: u64, mask: LaneMask) -> bool {
        if self.shadow.is_some() || self.races.is_some() {
            return false;
        }
        lanes::max_end(addrs, width, mask) <= self.data.len() as u64
    }

    /// Warp load of `V` consecutive `f32`s per lane from block-local byte
    /// offsets.
    ///
    /// An out-of-bounds active lane — or a sanitizer finding (uninitialized
    /// read, cross-warp hazard) — raises a
    /// [`DeviceFault`](crate::DeviceFault) contained at the block boundary.
    pub(crate) fn warp_ld<const V: usize>(
        &mut self,
        stats: &mut KernelStats,
        site: Site,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [[f32; V]; WARP_SIZE] {
        let width = (V * 4) as u64;
        let mut out = [[0.0f32; V]; WARP_SIZE];
        if self.plain_in_bounds(addrs, width, mask) {
            if mask.is_all() {
                for lane in 0..WARP_SIZE {
                    let a = addrs[lane] as usize;
                    for (v, slot) in out[lane].iter_mut().enumerate() {
                        let p = a + v * 4;
                        *slot = f32::from_le_bytes(self.data[p..p + 4].try_into().unwrap());
                    }
                }
            } else {
                for lane in mask.iter() {
                    let a = addrs[lane] as usize;
                    for (v, slot) in out[lane].iter_mut().enumerate() {
                        let p = a + v * 4;
                        *slot = f32::from_le_bytes(self.data[p..p + 4].try_into().unwrap());
                    }
                }
            }
        } else {
            for lane in mask.iter() {
                let a = addrs[lane];
                self.pre_read(a, width, site, lane);
                for (v, slot) in out[lane].iter_mut().enumerate() {
                    let p = (a as usize) + v * 4;
                    *slot = f32::from_le_bytes(self.data[p..p + 4].try_into().unwrap());
                }
            }
        }
        let outcome = bank_conflict_cycles(addrs, width, mask, self.banks, self.bank_width);
        stats.sm_ld_requests += 1;
        stats.sm_ld_cycles += outcome.cycles;
        stats.sm_bytes_useful += mask.count() as u64 * width;
        stats.sm_broadcasts += u64::from(outcome.broadcast);
        stats.sm_conflict_histogram[KernelStats::conflict_bucket(outcome.cycles)] += 1;
        out
    }

    /// Warp store of `V` consecutive `f32`s per lane.
    ///
    /// Faults like [`SharedMemory::warp_ld`].
    pub(crate) fn warp_st<const V: usize>(
        &mut self,
        stats: &mut KernelStats,
        site: Site,
        addrs: &WarpAddrs,
        values: &[[f32; V]; WARP_SIZE],
        mask: LaneMask,
    ) {
        let width = (V * 4) as u64;
        if self.plain_in_bounds(addrs, width, mask) {
            if mask.is_all() {
                for lane in 0..WARP_SIZE {
                    let a = addrs[lane] as usize;
                    for (v, val) in values[lane].iter().enumerate() {
                        let p = a + v * 4;
                        self.data[p..p + 4].copy_from_slice(&val.to_le_bytes());
                    }
                }
            } else {
                for lane in mask.iter() {
                    let a = addrs[lane] as usize;
                    for (v, val) in values[lane].iter().enumerate() {
                        let p = a + v * 4;
                        self.data[p..p + 4].copy_from_slice(&val.to_le_bytes());
                    }
                }
            }
        } else {
            for lane in mask.iter() {
                let a = addrs[lane];
                self.pre_write(a, width, site, lane);
                for (v, val) in values[lane].iter().enumerate() {
                    let p = (a as usize) + v * 4;
                    self.data[p..p + 4].copy_from_slice(&val.to_le_bytes());
                }
            }
        }
        let outcome = bank_conflict_cycles(addrs, width, mask, self.banks, self.bank_width);
        stats.sm_st_requests += 1;
        stats.sm_st_cycles += outcome.cycles;
        stats.sm_bytes_useful += mask.count() as u64 * width;
        stats.sm_broadcasts += u64::from(outcome.broadcast);
        stats.sm_conflict_histogram[KernelStats::conflict_bucket(outcome.cycles)] += 1;
    }

    /// Warp load of `W` raw bytes per lane (short-data-type extension).
    ///
    /// Faults like [`SharedMemory::warp_ld`].
    pub(crate) fn warp_ld_bytes<const W: usize>(
        &mut self,
        stats: &mut KernelStats,
        site: Site,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [[u8; W]; WARP_SIZE] {
        let width = W as u64;
        let mut out = [[0u8; W]; WARP_SIZE];
        if self.plain_in_bounds(addrs, width, mask) {
            for lane in mask.iter() {
                let a = addrs[lane] as usize;
                out[lane].copy_from_slice(&self.data[a..a + W]);
            }
        } else {
            for lane in mask.iter() {
                let a = addrs[lane];
                self.pre_read(a, width, site, lane);
                out[lane].copy_from_slice(&self.data[a as usize..a as usize + W]);
            }
        }
        let outcome = bank_conflict_cycles(addrs, width, mask, self.banks, self.bank_width);
        stats.sm_ld_requests += 1;
        stats.sm_ld_cycles += outcome.cycles;
        stats.sm_bytes_useful += mask.count() as u64 * width;
        stats.sm_broadcasts += u64::from(outcome.broadcast);
        stats.sm_conflict_histogram[KernelStats::conflict_bucket(outcome.cycles)] += 1;
        out
    }

    /// Warp store of `W` raw bytes per lane (short-data-type extension).
    ///
    /// Faults like [`SharedMemory::warp_ld`].
    pub(crate) fn warp_st_bytes<const W: usize>(
        &mut self,
        stats: &mut KernelStats,
        site: Site,
        addrs: &WarpAddrs,
        values: &[[u8; W]; WARP_SIZE],
        mask: LaneMask,
    ) {
        let width = W as u64;
        if self.plain_in_bounds(addrs, width, mask) {
            for lane in mask.iter() {
                let a = addrs[lane] as usize;
                self.data[a..a + W].copy_from_slice(&values[lane]);
            }
        } else {
            for lane in mask.iter() {
                let a = addrs[lane];
                self.pre_write(a, width, site, lane);
                self.data[a as usize..a as usize + W].copy_from_slice(&values[lane]);
            }
        }
        let outcome = bank_conflict_cycles(addrs, width, mask, self.banks, self.bank_width);
        stats.sm_st_requests += 1;
        stats.sm_st_cycles += outcome.cycles;
        stats.sm_bytes_useful += mask.count() as u64 * width;
        stats.sm_broadcasts += u64::from(outcome.broadcast);
        stats.sm_conflict_histogram[KernelStats::conflict_bucket(outcome.cycles)] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{install_quiet_hook, FaultPayload};
    use crate::warp::{lane_addrs, lane_addrs_from, lane_addrs_uniform};

    const B: u32 = 32;

    /// Runs `f`, which must raise a device fault, and returns the payload.
    fn trap(f: impl FnOnce() + std::panic::UnwindSafe) -> FaultPayload {
        install_quiet_hook();
        let payload = std::panic::catch_unwind(f).unwrap_err();
        *payload
            .downcast::<FaultPayload>()
            .expect("expected a typed device fault")
    }

    fn site(warp: usize, phase: u32) -> Site {
        Site { warp, phase }
    }

    #[test]
    fn conventional_float_on_kepler_is_one_cycle_half_bandwidth() {
        // Paper Fig. 1a: contiguous floats on 8-byte banks.
        let out = bank_conflict_cycles(&lane_addrs(0, 4), 4, LaneMask::ALL, B, BankWidth::B8);
        assert_eq!(out.cycles, 1);
        // 128 useful bytes in a cycle that could carry 256: the mismatch.
        let useful = 32u64 * 4;
        let capacity = B as u64 * BankWidth::B8.bytes() * out.cycles;
        assert_eq!(useful * 2, capacity);
    }

    #[test]
    fn matched_float2_on_kepler_is_one_cycle_full_bandwidth() {
        // Paper Fig. 1b: each lane reads an 8-byte unit.
        let out = bank_conflict_cycles(&lane_addrs(0, 8), 8, LaneMask::ALL, B, BankWidth::B8);
        assert_eq!(out.cycles, 1);
        assert!(!out.broadcast);
        // 256 useful bytes = full fabric width.
    }

    #[test]
    fn conventional_float_on_fermi_is_matched() {
        let out = bank_conflict_cycles(&lane_addrs(0, 4), 4, LaneMask::ALL, B, BankWidth::B4);
        assert_eq!(out.cycles, 1);
        assert!(!out.broadcast);
    }

    #[test]
    fn column_access_is_fully_serialized() {
        // All lanes in bank 0, distinct words: 32-way conflict.
        let stride = 32 * 8;
        let out = bank_conflict_cycles(&lane_addrs(0, stride), 4, LaneMask::ALL, B, BankWidth::B8);
        assert_eq!(out.cycles, 32);
    }

    #[test]
    fn padded_column_access_is_conflict_free() {
        // Classic padding trick: row pitch of 33 words.
        let stride = 33 * 8;
        let out = bank_conflict_cycles(&lane_addrs(0, stride), 8, LaneMask::ALL, B, BankWidth::B8);
        assert_eq!(out.cycles, 1);
    }

    #[test]
    fn two_way_conflict() {
        // Lanes 0..16 in words 0..16, lanes 16..32 revisit banks 0..16 with
        // different words (stride 2 words): 2-way conflict.
        let out = bank_conflict_cycles(&lane_addrs(0, 16), 8, LaneMask::ALL, B, BankWidth::B8);
        assert_eq!(out.cycles, 2);
    }

    #[test]
    fn uniform_address_broadcasts() {
        let out = bank_conflict_cycles(&lane_addrs_uniform(40), 4, LaneMask::ALL, B, BankWidth::B8);
        assert_eq!(out.cycles, 1);
        assert!(out.broadcast);
    }

    #[test]
    fn same_word_different_halves_broadcast_on_kepler() {
        // Lanes 0 and 1 read the two floats of one 8-byte word.
        let addrs = lane_addrs_from(|l| (l as u64 % 2) * 4);
        let out = bank_conflict_cycles(&addrs, 4, LaneMask::first(2), B, BankWidth::B8);
        assert_eq!(out.cycles, 1);
        assert!(out.broadcast);
    }

    #[test]
    fn float4_on_fermi_spans_four_banks() {
        // 32 lanes x 16 B = 512 B over 128 B of fabric: 4 cycles.
        let out = bank_conflict_cycles(&lane_addrs(0, 16), 16, LaneMask::ALL, B, BankWidth::B4);
        assert_eq!(out.cycles, 4);
    }

    #[test]
    fn float4_on_kepler_spans_two_cycles() {
        // 512 B over 256 B of fabric: 2 cycles.
        let out = bank_conflict_cycles(&lane_addrs(0, 16), 16, LaneMask::ALL, B, BankWidth::B8);
        assert_eq!(out.cycles, 2);
    }

    #[test]
    fn empty_mask_costs_one_cycle() {
        let out = bank_conflict_cycles(&lane_addrs(0, 4), 4, LaneMask::NONE, B, BankWidth::B8);
        assert_eq!(out.cycles, 1);
        assert!(!out.broadcast);
    }

    #[test]
    fn functional_roundtrip_and_stats() {
        let mut sm = SharedMemory::new(4096, B, BankWidth::B8);
        let mut stats = KernelStats::default();
        let addrs = lane_addrs(0, 8);
        let vals: [[f32; 2]; WARP_SIZE] = std::array::from_fn(|l| [l as f32, -(l as f32)]);
        sm.warp_st::<2>(&mut stats, Site::ZERO, &addrs, &vals, LaneMask::ALL);
        let back = sm.warp_ld::<2>(&mut stats, Site::ZERO, &addrs, LaneMask::ALL);
        assert_eq!(back[9], [9.0, -9.0]);
        assert_eq!(stats.sm_st_requests, 1);
        assert_eq!(stats.sm_ld_requests, 1);
        assert_eq!(stats.sm_st_cycles, 1);
        assert_eq!(stats.sm_ld_cycles, 1);
        assert_eq!(stats.sm_bytes_useful, 2 * 32 * 8);
    }

    #[test]
    fn unmatched_vs_matched_bandwidth_utilization() {
        // Move 256 floats through SM both ways; matched should show ~2x the
        // bandwidth utilization of unmatched on Kepler.
        let spec_bw = 32 * 8;
        let mut sm = SharedMemory::new(2048, B, BankWidth::B8);

        let mut unmatched = KernelStats::default();
        for i in 0..8u64 {
            let addrs = lane_addrs(i * 128, 4);
            sm.warp_ld::<1>(&mut unmatched, Site::ZERO, &addrs, LaneMask::ALL);
        }
        let mut matched = KernelStats::default();
        for i in 0..4u64 {
            let addrs = lane_addrs(i * 256, 8);
            sm.warp_ld::<2>(&mut matched, Site::ZERO, &addrs, LaneMask::ALL);
        }
        assert_eq!(unmatched.sm_bytes_useful, matched.sm_bytes_useful);
        let u_un = unmatched.sm_bandwidth_utilization(spec_bw);
        let u_ma = matched.sm_bandwidth_utilization(spec_bw);
        assert!((u_ma / u_un - 2.0).abs() < 1e-9, "{u_ma} vs {u_un}");
        assert!((u_ma - 1.0).abs() < 1e-9);
    }

    #[test]
    fn byte_access_roundtrip() {
        let mut sm = SharedMemory::new(256, B, BankWidth::B4);
        let mut stats = KernelStats::default();
        let addrs = lane_addrs(0, 2);
        let vals: [[u8; 2]; WARP_SIZE] = std::array::from_fn(|l| [l as u8, 0xCD]);
        sm.warp_st_bytes::<2>(&mut stats, Site::ZERO, &addrs, &vals, LaneMask::ALL);
        let back = sm.warp_ld_bytes::<2>(&mut stats, Site::ZERO, &addrs, LaneMask::ALL);
        assert_eq!(back[31], [31, 0xCD]);
        // fp16-style mismatch on 4-byte banks: lanes pair up in words.
        assert_eq!(stats.sm_ld_cycles, 1);
        assert!(stats.sm_broadcasts >= 1);
    }

    #[test]
    fn conflict_histogram_is_recorded() {
        let mut sm = SharedMemory::new(32 * 8 * 32, B, BankWidth::B8);
        let mut stats = KernelStats::default();
        // Conflict-free float2 load.
        sm.warp_ld::<2>(&mut stats, Site::ZERO, &lane_addrs(0, 8), LaneMask::ALL);
        // 32-way conflicted column access.
        sm.warp_ld::<1>(
            &mut stats,
            Site::ZERO,
            &lane_addrs(0, 32 * 8),
            LaneMask::ALL,
        );
        assert_eq!(stats.sm_conflict_histogram[0], 1);
        assert_eq!(stats.sm_conflict_histogram[5], 1);
        assert!((stats.sm_conflict_free_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn oob_access_raises_typed_fault() {
        let p = trap(|| {
            let mut sm = SharedMemory::new(64, B, BankWidth::B8);
            let mut stats = KernelStats::default();
            sm.warp_ld::<1>(&mut stats, site(1, 0), &lane_addrs(0, 4), LaneMask::ALL);
        });
        // Lane 16 is the first whose 4-byte read at offset 64 overflows.
        assert_eq!(p.warp, 1);
        assert_eq!(p.lane, 16);
        match p.kind {
            FaultKind::OutOfBounds {
                space,
                access,
                addr,
                limit,
                ..
            } => {
                assert_eq!(space, MemSpace::Shared);
                assert_eq!(access, AccessKind::Load);
                assert_eq!(addr, 64);
                assert_eq!(limit, 64);
            }
            other => panic!("expected OutOfBounds, got {other:?}"),
        }
    }

    #[test]
    fn uninit_read_detected_when_tracking() {
        let p = trap(|| {
            let mut sm = SharedMemory::new(256, B, BankWidth::B8).with_sanitizer(true, false);
            let mut stats = KernelStats::default();
            sm.warp_ld::<1>(&mut stats, Site::ZERO, &lane_addrs(0, 4), LaneMask::ALL);
        });
        assert!(matches!(
            p.kind,
            FaultKind::UninitializedRead {
                space: MemSpace::Shared,
                addr: 0,
                ..
            }
        ));
    }

    #[test]
    fn write_then_read_is_clean_under_memcheck() {
        let mut sm = SharedMemory::new(256, B, BankWidth::B8).with_sanitizer(true, false);
        let mut stats = KernelStats::default();
        let addrs = lane_addrs(0, 4);
        let vals: [[f32; 1]; WARP_SIZE] = std::array::from_fn(|l| [l as f32]);
        sm.warp_st::<1>(&mut stats, Site::ZERO, &addrs, &vals, LaneMask::ALL);
        let back = sm.warp_ld::<1>(&mut stats, Site::ZERO, &addrs, LaneMask::ALL);
        assert_eq!(back[3][0], 3.0);
    }

    #[test]
    fn write_write_race_between_warps_detected() {
        let p = trap(|| {
            let mut sm = SharedMemory::new(256, B, BankWidth::B8).with_sanitizer(false, true);
            let mut stats = KernelStats::default();
            let addrs = lane_addrs(0, 4);
            let vals: [[f32; 1]; WARP_SIZE] = [[0.0]; WARP_SIZE];
            // Two warps store to the same bytes in the same phase.
            sm.warp_st::<1>(&mut stats, site(0, 0), &addrs, &vals, LaneMask::ALL);
            sm.warp_st::<1>(&mut stats, site(1, 0), &addrs, &vals, LaneMask::ALL);
        });
        assert_eq!(p.warp, 1);
        match p.kind {
            FaultKind::RaceHazard {
                hazard,
                addr,
                other_warp,
            } => {
                assert_eq!(hazard, Hazard::WriteWrite);
                assert_eq!(addr, 0);
                assert_eq!(other_warp, 0);
            }
            other => panic!("expected RaceHazard, got {other:?}"),
        }
    }

    #[test]
    fn read_after_write_race_detected() {
        let p = trap(|| {
            let mut sm = SharedMemory::new(256, B, BankWidth::B8).with_sanitizer(false, true);
            let mut stats = KernelStats::default();
            let addrs = lane_addrs(0, 4);
            let vals: [[f32; 1]; WARP_SIZE] = [[1.0]; WARP_SIZE];
            sm.warp_st::<1>(&mut stats, site(0, 0), &addrs, &vals, LaneMask::ALL);
            sm.warp_ld::<1>(&mut stats, site(1, 0), &addrs, LaneMask::ALL);
        });
        assert!(matches!(
            p.kind,
            FaultKind::RaceHazard {
                hazard: Hazard::ReadAfterWrite,
                other_warp: 0,
                ..
            }
        ));
    }

    #[test]
    fn write_after_read_race_detected() {
        let p = trap(|| {
            let mut sm = SharedMemory::new(256, B, BankWidth::B8).with_sanitizer(false, true);
            let mut stats = KernelStats::default();
            let addrs = lane_addrs(0, 4);
            let vals: [[f32; 1]; WARP_SIZE] = [[1.0]; WARP_SIZE];
            // Warp 0 writes and reads in phase 0; barrier; warp 2 reads in
            // phase 1, then warp 5 overwrites in the same phase.
            sm.warp_st::<1>(&mut stats, site(0, 0), &addrs, &vals, LaneMask::ALL);
            sm.warp_ld::<1>(&mut stats, site(2, 1), &addrs, LaneMask::ALL);
            sm.warp_st::<1>(&mut stats, site(5, 1), &addrs, &vals, LaneMask::ALL);
        });
        assert_eq!(p.warp, 5);
        assert!(matches!(
            p.kind,
            FaultKind::RaceHazard {
                hazard: Hazard::WriteAfterRead,
                other_warp: 2,
                ..
            }
        ));
    }

    #[test]
    fn barrier_separated_accesses_do_not_race() {
        let mut sm = SharedMemory::new(256, B, BankWidth::B8).with_sanitizer(true, true);
        let mut stats = KernelStats::default();
        let addrs = lane_addrs(0, 4);
        let vals: [[f32; 1]; WARP_SIZE] = std::array::from_fn(|l| [l as f32]);
        // Warp 0 writes in phase 0; after a barrier every warp may read.
        sm.warp_st::<1>(&mut stats, site(0, 0), &addrs, &vals, LaneMask::ALL);
        for w in 0..4 {
            let back = sm.warp_ld::<1>(&mut stats, site(w, 1), &addrs, LaneMask::ALL);
            assert_eq!(back[11][0], 11.0);
        }
    }

    #[test]
    fn same_warp_accesses_never_race() {
        // Warp-synchronous execution orders a warp's own accesses.
        let mut sm = SharedMemory::new(256, B, BankWidth::B8).with_sanitizer(true, true);
        let mut stats = KernelStats::default();
        let addrs = lane_addrs(0, 4);
        let vals: [[f32; 1]; WARP_SIZE] = [[2.0]; WARP_SIZE];
        sm.warp_st::<1>(&mut stats, site(3, 0), &addrs, &vals, LaneMask::ALL);
        sm.warp_st::<1>(&mut stats, site(3, 0), &addrs, &vals, LaneMask::ALL);
        sm.warp_ld::<1>(&mut stats, site(3, 0), &addrs, LaneMask::ALL);
    }

    #[test]
    fn disjoint_warp_writes_do_not_race() {
        let mut sm = SharedMemory::new(1024, B, BankWidth::B8).with_sanitizer(false, true);
        let mut stats = KernelStats::default();
        let vals: [[f32; 1]; WARP_SIZE] = [[1.0]; WARP_SIZE];
        for w in 0..4u64 {
            let addrs = lane_addrs(w * 128, 4);
            sm.warp_st::<1>(
                &mut stats,
                site(w as usize, 0),
                &addrs,
                &vals,
                LaneMask::ALL,
            );
        }
    }
}

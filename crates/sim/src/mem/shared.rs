//! Shared memory with the banked-access model at the heart of the paper.
//!
//! Shared memory is divided into [`GpuSpec::smem_banks`](crate::GpuSpec)
//! banks of [`BankWidth`](crate::BankWidth) bytes each, interleaved at
//! bank-word granularity:
//!
//! ```text
//! bank(addr) = (addr / bank_width) mod banks
//! word(addr) =  addr / bank_width
//! ```
//!
//! One warp access is serviced in *replays*: all lanes whose requests fall in
//! distinct words of the same bank serialize, while lanes hitting the *same*
//! word are served together by the broadcast mechanism. The access therefore
//! costs `max over banks of (distinct words in that bank)` cycles, and each
//! cycle can deliver at most `banks x bank_width` bytes.
//!
//! This reproduces the paper's Fig. 1 exactly: on Kepler (8-byte banks), 32
//! lanes reading consecutive `float`s hit only 16 distinct words — the access
//! completes in one cycle but moves 128 useful bytes where the fabric could
//! deliver 256. The *matched* pattern (each lane reads a `float2`) moves the
//! full 256 bytes per cycle, doubling effective bandwidth.

use crate::spec::{BankWidth, WARP_SIZE};
use crate::stats::KernelStats;
use crate::warp::{LaneMask, WarpAddrs};

/// Result of analyzing one warp access against the bank model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankAccessOutcome {
    /// Cycles the access occupies the shared-memory pipeline (>= 1).
    pub cycles: u64,
    /// Whether at least two active lanes were served by a same-word
    /// broadcast.
    pub broadcast: bool,
}

/// Computes the cost of one warp access of `width` bytes per lane under the
/// banked model.
///
/// Exposed publicly so that analytic code (and tests) can reason about
/// access patterns without constructing a memory.
///
/// # Examples
///
/// ```
/// use kconv_sim::{bank_conflict_cycles, lane_addrs, BankWidth, LaneMask};
/// // Kepler, conventional pattern: 32 consecutive floats. One cycle
/// // (no conflict) but only half the fabric is used.
/// let out = bank_conflict_cycles(
///     &lane_addrs(0, 4), 4, LaneMask::ALL, 32, BankWidth::B8);
/// assert_eq!(out.cycles, 1);
/// assert!(out.broadcast); // lane pairs share an 8-byte word
///
/// // Two-way conflict: lanes stride by a full row of 32 words.
/// let out = bank_conflict_cycles(
///     &lane_addrs(0, 32 * 8), 4, LaneMask::ALL, 32, BankWidth::B8);
/// assert_eq!(out.cycles, 32); // every lane in bank 0, distinct words
/// ```
pub fn bank_conflict_cycles(
    addrs: &WarpAddrs,
    width: u64,
    mask: LaneMask,
    banks: u32,
    bank_width: BankWidth,
) -> BankAccessOutcome {
    let bw = bank_width.bytes();
    let nb = banks as u64;
    debug_assert!(nb <= 64, "at most 64 banks supported");
    // Distinct bank-words touched by the warp. A lane access can span
    // several words (vector accesses); widths modeled are <= 16 B, so 32
    // lanes cover at most 128 words before deduplication. Words repeat
    // heavily in real patterns; a flat scan over a small array is fastest.
    let mut words = [u64::MAX; 128];
    let mut n = 0usize;
    let mut broadcast = false;
    for lane in mask.iter() {
        let a = addrs[lane];
        let first = a / bw;
        let last = (a + width - 1) / bw;
        for w in first..=last {
            if words[..n].contains(&w) {
                broadcast = true;
            } else {
                words[n] = w;
                n += 1;
            }
        }
    }
    let mut per_bank = [0u8; 64];
    let mut max_words = 1u8;
    for &w in &words[..n] {
        let b = (w % nb) as usize;
        per_bank[b] += 1;
        max_words = max_words.max(per_bank[b]);
    }
    BankAccessOutcome {
        cycles: u64::from(max_words),
        broadcast,
    }
}

/// Per-thread-block shared memory (functional store + bank instrumentation).
///
/// Created by the launcher for each block with the size requested in the
/// [`LaunchConfig`](crate::LaunchConfig); device code addresses it with
/// block-local byte offsets.
#[derive(Debug)]
pub struct SharedMemory {
    data: Vec<u8>,
    banks: u32,
    bank_width: BankWidth,
}

impl SharedMemory {
    /// Creates a zero-initialized shared memory of `bytes` bytes.
    pub fn new(bytes: u32, banks: u32, bank_width: BankWidth) -> Self {
        SharedMemory {
            data: vec![0; bytes as usize],
            banks,
            bank_width,
        }
    }

    /// Size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.data.len()
    }

    fn check_range(&self, addr: u64, width: u64) {
        assert!(
            (addr + width) as usize <= self.data.len(),
            "shared-memory access out of bounds: addr {addr} width {width}, size {}",
            self.data.len()
        );
    }

    /// Warp load of `V` consecutive `f32`s per lane from block-local byte
    /// offsets.
    ///
    /// # Panics
    ///
    /// Panics if an active lane's range exceeds the allocation.
    pub(crate) fn warp_ld<const V: usize>(
        &mut self,
        stats: &mut KernelStats,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [[f32; V]; WARP_SIZE] {
        let width = (V * 4) as u64;
        let mut out = [[0.0f32; V]; WARP_SIZE];
        for lane in mask.iter() {
            let a = addrs[lane];
            self.check_range(a, width);
            for (v, slot) in out[lane].iter_mut().enumerate() {
                let p = (a as usize) + v * 4;
                *slot = f32::from_le_bytes(self.data[p..p + 4].try_into().unwrap());
            }
        }
        let outcome = bank_conflict_cycles(addrs, width, mask, self.banks, self.bank_width);
        stats.sm_ld_requests += 1;
        stats.sm_ld_cycles += outcome.cycles;
        stats.sm_bytes_useful += mask.count() as u64 * width;
        stats.sm_broadcasts += u64::from(outcome.broadcast);
        stats.sm_conflict_histogram[KernelStats::conflict_bucket(outcome.cycles)] += 1;
        out
    }

    /// Warp store of `V` consecutive `f32`s per lane.
    ///
    /// # Panics
    ///
    /// Panics if an active lane's range exceeds the allocation.
    pub(crate) fn warp_st<const V: usize>(
        &mut self,
        stats: &mut KernelStats,
        addrs: &WarpAddrs,
        values: &[[f32; V]; WARP_SIZE],
        mask: LaneMask,
    ) {
        let width = (V * 4) as u64;
        for lane in mask.iter() {
            let a = addrs[lane];
            self.check_range(a, width);
            for (v, val) in values[lane].iter().enumerate() {
                let p = (a as usize) + v * 4;
                self.data[p..p + 4].copy_from_slice(&val.to_le_bytes());
            }
        }
        let outcome = bank_conflict_cycles(addrs, width, mask, self.banks, self.bank_width);
        stats.sm_st_requests += 1;
        stats.sm_st_cycles += outcome.cycles;
        stats.sm_bytes_useful += mask.count() as u64 * width;
        stats.sm_broadcasts += u64::from(outcome.broadcast);
        stats.sm_conflict_histogram[KernelStats::conflict_bucket(outcome.cycles)] += 1;
    }

    /// Warp load of `W` raw bytes per lane (short-data-type extension).
    ///
    /// # Panics
    ///
    /// Panics if an active lane's range exceeds the allocation.
    pub(crate) fn warp_ld_bytes<const W: usize>(
        &mut self,
        stats: &mut KernelStats,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [[u8; W]; WARP_SIZE] {
        let width = W as u64;
        let mut out = [[0u8; W]; WARP_SIZE];
        for lane in mask.iter() {
            let a = addrs[lane];
            self.check_range(a, width);
            out[lane].copy_from_slice(&self.data[a as usize..a as usize + W]);
        }
        let outcome = bank_conflict_cycles(addrs, width, mask, self.banks, self.bank_width);
        stats.sm_ld_requests += 1;
        stats.sm_ld_cycles += outcome.cycles;
        stats.sm_bytes_useful += mask.count() as u64 * width;
        stats.sm_broadcasts += u64::from(outcome.broadcast);
        stats.sm_conflict_histogram[KernelStats::conflict_bucket(outcome.cycles)] += 1;
        out
    }

    /// Warp store of `W` raw bytes per lane (short-data-type extension).
    ///
    /// # Panics
    ///
    /// Panics if an active lane's range exceeds the allocation.
    pub(crate) fn warp_st_bytes<const W: usize>(
        &mut self,
        stats: &mut KernelStats,
        addrs: &WarpAddrs,
        values: &[[u8; W]; WARP_SIZE],
        mask: LaneMask,
    ) {
        let width = W as u64;
        for lane in mask.iter() {
            let a = addrs[lane];
            self.check_range(a, width);
            self.data[a as usize..a as usize + W].copy_from_slice(&values[lane]);
        }
        let outcome = bank_conflict_cycles(addrs, width, mask, self.banks, self.bank_width);
        stats.sm_st_requests += 1;
        stats.sm_st_cycles += outcome.cycles;
        stats.sm_bytes_useful += mask.count() as u64 * width;
        stats.sm_broadcasts += u64::from(outcome.broadcast);
        stats.sm_conflict_histogram[KernelStats::conflict_bucket(outcome.cycles)] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warp::{lane_addrs, lane_addrs_from, lane_addrs_uniform};

    const B: u32 = 32;

    #[test]
    fn conventional_float_on_kepler_is_one_cycle_half_bandwidth() {
        // Paper Fig. 1a: contiguous floats on 8-byte banks.
        let out = bank_conflict_cycles(&lane_addrs(0, 4), 4, LaneMask::ALL, B, BankWidth::B8);
        assert_eq!(out.cycles, 1);
        // 128 useful bytes in a cycle that could carry 256: the mismatch.
        let useful = 32u64 * 4;
        let capacity = B as u64 * BankWidth::B8.bytes() * out.cycles;
        assert_eq!(useful * 2, capacity);
    }

    #[test]
    fn matched_float2_on_kepler_is_one_cycle_full_bandwidth() {
        // Paper Fig. 1b: each lane reads an 8-byte unit.
        let out = bank_conflict_cycles(&lane_addrs(0, 8), 8, LaneMask::ALL, B, BankWidth::B8);
        assert_eq!(out.cycles, 1);
        assert!(!out.broadcast);
        // 256 useful bytes = full fabric width.
    }

    #[test]
    fn conventional_float_on_fermi_is_matched() {
        let out = bank_conflict_cycles(&lane_addrs(0, 4), 4, LaneMask::ALL, B, BankWidth::B4);
        assert_eq!(out.cycles, 1);
        assert!(!out.broadcast);
    }

    #[test]
    fn column_access_is_fully_serialized() {
        // All lanes in bank 0, distinct words: 32-way conflict.
        let stride = 32 * 8;
        let out = bank_conflict_cycles(&lane_addrs(0, stride), 4, LaneMask::ALL, B, BankWidth::B8);
        assert_eq!(out.cycles, 32);
    }

    #[test]
    fn padded_column_access_is_conflict_free() {
        // Classic padding trick: row pitch of 33 words.
        let stride = 33 * 8;
        let out = bank_conflict_cycles(&lane_addrs(0, stride), 8, LaneMask::ALL, B, BankWidth::B8);
        assert_eq!(out.cycles, 1);
    }

    #[test]
    fn two_way_conflict() {
        // Lanes 0..16 in words 0..16, lanes 16..32 revisit banks 0..16 with
        // different words (stride 2 words): 2-way conflict.
        let out = bank_conflict_cycles(&lane_addrs(0, 16), 8, LaneMask::ALL, B, BankWidth::B8);
        assert_eq!(out.cycles, 2);
    }

    #[test]
    fn uniform_address_broadcasts() {
        let out = bank_conflict_cycles(&lane_addrs_uniform(40), 4, LaneMask::ALL, B, BankWidth::B8);
        assert_eq!(out.cycles, 1);
        assert!(out.broadcast);
    }

    #[test]
    fn same_word_different_halves_broadcast_on_kepler() {
        // Lanes 0 and 1 read the two floats of one 8-byte word.
        let addrs = lane_addrs_from(|l| (l as u64 % 2) * 4);
        let out = bank_conflict_cycles(&addrs, 4, LaneMask::first(2), B, BankWidth::B8);
        assert_eq!(out.cycles, 1);
        assert!(out.broadcast);
    }

    #[test]
    fn float4_on_fermi_spans_four_banks() {
        // 32 lanes x 16 B = 512 B over 128 B of fabric: 4 cycles.
        let out = bank_conflict_cycles(&lane_addrs(0, 16), 16, LaneMask::ALL, B, BankWidth::B4);
        assert_eq!(out.cycles, 4);
    }

    #[test]
    fn float4_on_kepler_spans_two_cycles() {
        // 512 B over 256 B of fabric: 2 cycles.
        let out = bank_conflict_cycles(&lane_addrs(0, 16), 16, LaneMask::ALL, B, BankWidth::B8);
        assert_eq!(out.cycles, 2);
    }

    #[test]
    fn empty_mask_costs_one_cycle() {
        let out = bank_conflict_cycles(&lane_addrs(0, 4), 4, LaneMask::NONE, B, BankWidth::B8);
        assert_eq!(out.cycles, 1);
        assert!(!out.broadcast);
    }

    #[test]
    fn functional_roundtrip_and_stats() {
        let mut sm = SharedMemory::new(4096, B, BankWidth::B8);
        let mut stats = KernelStats::default();
        let addrs = lane_addrs(0, 8);
        let vals: [[f32; 2]; WARP_SIZE] = std::array::from_fn(|l| [l as f32, -(l as f32)]);
        sm.warp_st::<2>(&mut stats, &addrs, &vals, LaneMask::ALL);
        let back = sm.warp_ld::<2>(&mut stats, &addrs, LaneMask::ALL);
        assert_eq!(back[9], [9.0, -9.0]);
        assert_eq!(stats.sm_st_requests, 1);
        assert_eq!(stats.sm_ld_requests, 1);
        assert_eq!(stats.sm_st_cycles, 1);
        assert_eq!(stats.sm_ld_cycles, 1);
        assert_eq!(stats.sm_bytes_useful, 2 * 32 * 8);
    }

    #[test]
    fn unmatched_vs_matched_bandwidth_utilization() {
        // Move 256 floats through SM both ways; matched should show ~2x the
        // bandwidth utilization of unmatched on Kepler.
        let spec_bw = 32 * 8;
        let mut sm = SharedMemory::new(2048, B, BankWidth::B8);

        let mut unmatched = KernelStats::default();
        for i in 0..8u64 {
            let addrs = lane_addrs(i * 128, 4);
            sm.warp_ld::<1>(&mut unmatched, &addrs, LaneMask::ALL);
        }
        let mut matched = KernelStats::default();
        for i in 0..4u64 {
            let addrs = lane_addrs(i * 256, 8);
            sm.warp_ld::<2>(&mut matched, &addrs, LaneMask::ALL);
        }
        assert_eq!(unmatched.sm_bytes_useful, matched.sm_bytes_useful);
        let u_un = unmatched.sm_bandwidth_utilization(spec_bw);
        let u_ma = matched.sm_bandwidth_utilization(spec_bw);
        assert!((u_ma / u_un - 2.0).abs() < 1e-9, "{u_ma} vs {u_un}");
        assert!((u_ma - 1.0).abs() < 1e-9);
    }

    #[test]
    fn byte_access_roundtrip() {
        let mut sm = SharedMemory::new(256, B, BankWidth::B4);
        let mut stats = KernelStats::default();
        let addrs = lane_addrs(0, 2);
        let vals: [[u8; 2]; WARP_SIZE] = std::array::from_fn(|l| [l as u8, 0xCD]);
        sm.warp_st_bytes::<2>(&mut stats, &addrs, &vals, LaneMask::ALL);
        let back = sm.warp_ld_bytes::<2>(&mut stats, &addrs, LaneMask::ALL);
        assert_eq!(back[31], [31, 0xCD]);
        // fp16-style mismatch on 4-byte banks: lanes pair up in words.
        assert_eq!(stats.sm_ld_cycles, 1);
        assert!(stats.sm_broadcasts >= 1);
    }

    #[test]
    fn conflict_histogram_is_recorded() {
        let mut sm = SharedMemory::new(32 * 8 * 32, B, BankWidth::B8);
        let mut stats = KernelStats::default();
        // Conflict-free float2 load.
        sm.warp_ld::<2>(&mut stats, &lane_addrs(0, 8), LaneMask::ALL);
        // 32-way conflicted column access.
        sm.warp_ld::<1>(&mut stats, &lane_addrs(0, 32 * 8), LaneMask::ALL);
        assert_eq!(stats.sm_conflict_histogram[0], 1);
        assert_eq!(stats.sm_conflict_histogram[5], 1);
        assert!((stats.sm_conflict_free_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_access_panics() {
        let mut sm = SharedMemory::new(64, B, BankWidth::B8);
        let mut stats = KernelStats::default();
        sm.warp_ld::<1>(&mut stats, &lane_addrs(0, 4), LaneMask::ALL);
    }
}

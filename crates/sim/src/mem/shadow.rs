//! Shadow bitmap for uninitialized-memory tracking (memcheck).
//!
//! One bit per byte of the tracked space: set = the byte has been written
//! (by the host or by a device store) since the memory was created. Only
//! allocated when the sanitizer's memcheck tool is enabled, so the off
//! mode carries neither the memory nor the per-access checks.

/// A 1-bit-per-byte "has been written" map.
#[derive(Debug, Clone, Default)]
pub(crate) struct Shadow {
    bits: Vec<u64>,
    len: u64,
}

impl Shadow {
    /// A shadow for `len` bytes, all unmarked (nothing written yet).
    pub(crate) fn new(len: u64) -> Self {
        Shadow {
            bits: vec![0u64; (len as usize).div_ceil(64)],
            len,
        }
    }

    /// Grows the tracked range to `len` bytes (new bytes unmarked).
    pub(crate) fn grow(&mut self, len: u64) {
        if len > self.len {
            self.bits.resize((len as usize).div_ceil(64), 0);
            self.len = len;
        }
    }

    /// Marks `[addr, addr + width)` as written, one word-sized mask at a
    /// time (this sits on the sanitizer's store path, where the per-byte
    /// loop it replaces was measurable).
    pub(crate) fn mark(&mut self, addr: u64, width: u64) {
        debug_assert!(addr + width <= self.len);
        let end = addr + width;
        let mut b = addr;
        while b < end {
            let span = (64 - b % 64).min(end - b);
            let mask = (!0u64 >> (64 - span)) << (b % 64);
            self.bits[(b / 64) as usize] |= mask;
            b += span;
        }
    }

    /// Marks every tracked byte as written (conservative enable after the
    /// fact: existing contents are presumed valid).
    pub(crate) fn mark_all(&mut self) {
        self.bits.fill(u64::MAX);
    }

    /// Whether byte `addr` has been written.
    pub(crate) fn is_marked(&self, addr: u64) -> bool {
        self.bits[(addr / 64) as usize] & (1u64 << (addr % 64)) != 0
    }

    /// First never-written byte in `[addr, addr + width)`, if any.
    pub(crate) fn first_unmarked(&self, addr: u64, width: u64) -> Option<u64> {
        (addr..addr + width).find(|&b| !self.is_marked(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_shadow_is_unmarked() {
        let s = Shadow::new(100);
        assert_eq!(s.first_unmarked(0, 100), Some(0));
        assert!(!s.is_marked(63));
    }

    #[test]
    fn mark_and_query_ranges() {
        let mut s = Shadow::new(256);
        s.mark(10, 20);
        assert_eq!(s.first_unmarked(10, 20), None);
        assert_eq!(s.first_unmarked(5, 10), Some(5));
        assert_eq!(s.first_unmarked(25, 10), Some(30));
        assert!(s.is_marked(29));
        assert!(!s.is_marked(30));
    }

    #[test]
    fn mark_crosses_word_boundaries() {
        let mut s = Shadow::new(256);
        s.mark(60, 10);
        assert_eq!(s.first_unmarked(60, 10), None);
        assert!(s.is_marked(63) && s.is_marked(64));
        assert!(!s.is_marked(70));
    }

    #[test]
    fn grow_keeps_marks_and_adds_unmarked() {
        let mut s = Shadow::new(64);
        s.mark(0, 64);
        s.grow(128);
        assert_eq!(s.first_unmarked(0, 64), None);
        assert_eq!(s.first_unmarked(0, 128), Some(64));
    }

    #[test]
    fn mark_all_covers_everything() {
        let mut s = Shadow::new(1000);
        s.mark_all();
        assert_eq!(s.first_unmarked(0, 1000), None);
    }
}

//! Cooperative thread-block execution.
//!
//! A kernel is a Rust closure invoked once per thread block with a
//! [`BlockCtx`]. Inside, code is written in the warp-synchronous style: the
//! block's warps are iterated with [`BlockCtx::each_warp`] between
//! [`BlockCtx::sync`] barriers. Because warps execute *sequentially* between
//! barriers, any kernel that is race-free under CUDA semantics (no
//! inter-warp communication without a barrier) computes exactly the same
//! result here, while every warp-level access is observed by the memory
//! models.
//!
//! Per-thread "registers" are ordinary host arrays owned by the kernel
//! closure and indexed by thread id; the launch configuration's
//! `regs_per_thread` declares their architectural footprint for the
//! occupancy model.
//!
//! A `BlockCtx` is fully self-contained: it owns its block's ports to the
//! device memories ([`GmPlane`], [`CmPlane`]), its shared memory, its
//! read-only cache, and its own [`KernelStats`]. That is what lets the
//! launcher run blocks on worker threads and merge their statistics in
//! block-id order — see [`Gpu::launch`](crate::Gpu::launch).
//!
//! ## Fault containment
//!
//! Every warp operation carries its *site* (warp id + barrier phase) into
//! the memory models, so an out-of-bounds access or sanitizer finding
//! raises a typed [`DeviceFault`](crate::DeviceFault) naming the exact
//! warp/lane, contained at the block boundary by the launcher. The block
//! also hosts the watchdog (a step budget against runaway kernels), the
//! synccheck barrier-participation counters, and the test-only fault
//! injector.

use crate::fault::{self, FaultKind, Site};
use crate::mem::plane::{CmPlane, GmPlane};
use crate::mem::SharedMemory;
use crate::pricing::RoCache;
use crate::spec::WARP_SIZE;
use crate::stats::KernelStats;
use crate::trace::{cost_counters, TraceEvent, TraceOp};
use crate::warp::{LaneMask, WarpAddrs};

/// Geometry of the executing block within its launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDims {
    /// Linear index of this block in the grid.
    pub block_id: usize,
    /// Total number of blocks in the grid.
    pub grid_blocks: usize,
    /// Threads in this block.
    pub threads: usize,
}

impl BlockDims {
    /// Number of warps in the block (`ceil(threads / 32)`).
    pub fn warps(&self) -> usize {
        self.threads.div_ceil(WARP_SIZE)
    }
}

/// Block-scoped slice of a [`FaultInjection`](crate::FaultInjection): flip
/// one lane's address on the `op_index`-th warp memory operation of this
/// block.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Inject {
    pub(crate) op_index: u64,
    pub(crate) lane: usize,
    pub(crate) addr_xor: u64,
}

/// Execution context for one thread block.
///
/// Holds the block's ports to the device memories, this block's shared
/// memory, and the block-local statistics. All device traffic flows through
/// [`WarpCtx`] methods obtained from [`BlockCtx::each_warp`].
pub struct BlockCtx<'a> {
    /// Block geometry.
    pub dims: BlockDims,
    pub(crate) gm: GmPlane<'a>,
    pub(crate) cm: CmPlane<'a>,
    pub(crate) ro: RoCache,
    pub(crate) smem: SharedMemory,
    pub(crate) stats: KernelStats,
    /// Barrier interval index: incremented by [`BlockCtx::sync`]. Accesses
    /// in the same phase by different warps are unordered (racecheck's
    /// hazard window).
    phase: u32,
    /// Per-warp count of `bar_sync()` calls (synccheck).
    bar_counts: Vec<u64>,
    synccheck: bool,
    /// Watchdog: warp operations executed so far / allowed budget.
    steps: u64,
    step_budget: u64,
    /// Test-only fault injector and its per-block memory-op counter.
    inj: Option<Inject>,
    op_counter: u64,
    /// Trace buffer: `Some` when the launcher armed tracing; every warp
    /// memory instruction appends one event, harvested at block end and
    /// flushed to the [`TraceSink`](crate::TraceSink) in block-id order.
    pub(crate) events: Option<Vec<TraceEvent>>,
}

impl std::fmt::Debug for BlockCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCtx")
            .field("dims", &self.dims)
            .field("smem_bytes", &self.smem.len_bytes())
            .finish_non_exhaustive()
    }
}

impl<'a> BlockCtx<'a> {
    pub(crate) fn new(
        dims: BlockDims,
        gm: GmPlane<'a>,
        cm: CmPlane<'a>,
        ro: RoCache,
        smem: SharedMemory,
    ) -> Self {
        let warps = dims.warps();
        BlockCtx {
            dims,
            gm,
            cm,
            ro,
            smem,
            stats: KernelStats::default(),
            phase: 0,
            bar_counts: vec![0; warps],
            synccheck: false,
            steps: 0,
            step_budget: u64::MAX,
            inj: None,
            op_counter: 0,
            events: None,
        }
    }

    /// Arms per-instruction tracing: warp memory ops append to the block's
    /// event buffer instead of running counter-only.
    pub(crate) fn with_tracing(mut self) -> Self {
        self.events = Some(Vec::new());
        self
    }

    /// Enables synccheck: warps' `bar_sync()` participation counts are
    /// verified at every [`BlockCtx::sync`] and at block end.
    pub(crate) fn with_synccheck(mut self) -> Self {
        self.synccheck = true;
        self
    }

    /// Sets the watchdog budget (total warp operations per block).
    pub(crate) fn with_step_budget(mut self, budget: u64) -> Self {
        self.step_budget = budget;
        self
    }

    /// Arms the test-only fault injector for this block.
    pub(crate) fn with_injection(mut self, inj: Inject) -> Self {
        self.inj = Some(inj);
        self
    }

    /// Watchdog tick: one warp operation. Past the budget, the block is
    /// presumed hung (the simulator equivalent of a kernel timeout). With
    /// the default unlimited budget the tick is a single compare — the
    /// step counter is only observable through the `Timeout` fault, so
    /// not maintaining it then is free.
    fn step(&mut self, warp: usize) {
        if self.step_budget == u64::MAX {
            return;
        }
        self.steps += 1;
        if self.steps > self.step_budget {
            fault::raise(FaultKind::Timeout { steps: self.steps }, warp, 0);
        }
    }

    /// Fault injector: returns patched addresses when this is the armed
    /// memory operation, else `None`.
    fn inject(&mut self, addrs: &WarpAddrs) -> Option<WarpAddrs> {
        let inj = self.inj.as_ref()?;
        let idx = self.op_counter;
        self.op_counter += 1;
        if idx != inj.op_index {
            return None;
        }
        let mut patched = *addrs;
        patched[inj.lane] ^= inj.addr_xor;
        Some(patched)
    }

    /// Verifies synccheck's barrier-participation counters: every warp
    /// must have executed the same number of `bar_sync()` calls.
    fn verify_barriers(&self) {
        if !self.synccheck || self.bar_counts.is_empty() {
            return;
        }
        let (warp_min, &count_min) = self
            .bar_counts
            .iter()
            .enumerate()
            .min_by_key(|&(_, c)| c)
            .unwrap();
        let (warp_max, &count_max) = self
            .bar_counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| c)
            .unwrap();
        if count_min != count_max {
            fault::raise(
                FaultKind::BarrierDivergence {
                    warp_min,
                    count_min,
                    warp_max,
                    count_max,
                },
                warp_max,
                0,
            );
        }
    }

    /// End-of-block hook run by the launcher before the block's results
    /// are harvested (final synccheck verification).
    pub(crate) fn finish(&self) {
        self.verify_barriers();
    }

    /// Runs `f` for every warp of the block, in warp-id order.
    ///
    /// Call this between barriers for each program phase; warps may keep
    /// per-thread state in arrays captured by the closure.
    pub fn each_warp(&mut self, mut f: impl FnMut(&mut WarpCtx<'_, 'a>)) {
        for wid in 0..self.dims.warps() {
            self.step(wid);
            let mut warp = WarpCtx { block: self, wid };
            f(&mut warp);
        }
    }

    /// A `__syncthreads()` barrier: records the barrier for the timing
    /// model and advances the racecheck phase. (Warps are already
    /// serialized, so no scheduling is needed.) Under synccheck it also
    /// verifies that every warp reached the barrier the same number of
    /// times.
    pub fn sync(&mut self) {
        self.verify_barriers();
        self.stats.barriers += 1;
        let warps = self.dims.warps();
        self.stats.bar_syncs += warps as u64;
        if let Some(events) = self.events.as_mut() {
            // One arrival event per warp, in warp-id order, so offline
            // consumers can count per-warp barrier work positionally.
            for warp in 0..warps {
                events.push(TraceEvent {
                    op: TraceOp::Bar,
                    warp: warp as u32,
                    mask: LaneMask(0),
                    lane_bytes: 0,
                    transactions: 0,
                    cycles: 0,
                    addrs: [0; WARP_SIZE],
                });
            }
        }
        self.phase += 1;
    }

    /// The block's shared-memory size in bytes.
    pub fn smem_bytes(&self) -> usize {
        self.smem.len_bytes()
    }
}

/// Warp-level operations for one warp of a block.
///
/// Every memory method takes per-lane byte addresses and an active-lane
/// mask; the mask is automatically intersected with the warp's population
/// (the last warp of a block may be partial).
pub struct WarpCtx<'b, 'a> {
    block: &'b mut BlockCtx<'a>,
    wid: usize,
}

impl std::fmt::Debug for WarpCtx<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarpCtx").field("wid", &self.wid).finish()
    }
}

impl WarpCtx<'_, '_> {
    /// Warp index within the block.
    pub fn warp_id(&self) -> usize {
        self.wid
    }

    /// Global (block-local) thread id of `lane`.
    pub fn thread_id(&self, lane: usize) -> usize {
        self.wid * WARP_SIZE + lane
    }

    /// Mask of lanes that correspond to real threads (all 32 except in a
    /// trailing partial warp).
    pub fn population(&self) -> LaneMask {
        let first = self.wid * WARP_SIZE;
        let remaining = self.block.dims.threads.saturating_sub(first);
        LaneMask::first(remaining.min(WARP_SIZE))
    }

    fn live(&self, mask: LaneMask) -> LaneMask {
        LaneMask(mask.0 & self.population().0)
    }

    /// This warp's current site (warp id + barrier phase) for the memory
    /// models' fault reports.
    fn site(&self) -> Site {
        Site {
            warp: self.wid,
            phase: self.block.phase,
        }
    }

    /// Watchdog tick + injection for one memory op: returns the (possibly
    /// patched) addresses to use.
    fn pre_op(&mut self, addrs: &WarpAddrs) -> Option<WarpAddrs> {
        self.block.step(self.wid);
        self.block.inject(addrs)
    }

    /// Shared prologue/epilogue for every warp memory instruction: watchdog
    /// tick, fault injection, population masking — and, when the launcher
    /// armed tracing, a [`TraceEvent`] capturing the cost delta the memory
    /// model charged for this access (the `op`-specific counter pair from
    /// [`cost_counters`]). With tracing off the extra work is a single
    /// `Option` discriminant check; `access` inlines into the same code the
    /// ops previously open-coded.
    #[inline(always)]
    fn mem_op<R>(
        &mut self,
        addrs: &WarpAddrs,
        mask: LaneMask,
        op: TraceOp,
        lane_bytes: u32,
        access: impl FnOnce(&mut BlockCtx<'_>, Site, &WarpAddrs, LaneMask) -> R,
    ) -> R {
        let patched = self.pre_op(addrs);
        let addrs = patched.as_ref().unwrap_or(addrs);
        let m = self.live(mask);
        let site = self.site();
        if self.block.events.is_none() {
            return access(self.block, site, addrs, m);
        }
        let (t0, c0) = cost_counters(&self.block.stats, op);
        let out = access(self.block, site, addrs, m);
        let (t1, c1) = cost_counters(&self.block.stats, op);
        let ev = TraceEvent {
            op,
            warp: self.wid as u32,
            mask: m,
            lane_bytes,
            transactions: (t1 - t0) as u32,
            cycles: (c1 - c0) as u32,
            addrs: *addrs,
        };
        self.block.events.as_mut().expect("tracing armed").push(ev);
        out
    }

    /// Records this warp's arrival at a barrier for synccheck. The
    /// repository's kernels call [`BlockCtx::sync`] uniformly from block
    /// scope, which is inherently convergent; a kernel that makes barrier
    /// participation warp-dependent calls this from inside `each_warp` so
    /// that synccheck can observe (and flag) the divergence.
    pub fn bar_sync(&mut self) {
        self.block.step(self.wid);
        self.block.bar_counts[self.wid] += 1;
    }

    /// Global-memory warp load of `V` consecutive `f32`s per lane.
    pub fn ld_global<const V: usize>(
        &mut self,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [[f32; V]; WARP_SIZE] {
        self.mem_op(addrs, mask, TraceOp::GmLd, 4 * V as u32, |b, site, a, m| {
            b.gm.warp_ld::<V>(&mut b.stats, site, a, m)
        })
    }

    /// Global-memory warp store of `V` consecutive `f32`s per lane.
    pub fn st_global<const V: usize>(
        &mut self,
        addrs: &WarpAddrs,
        values: &[[f32; V]; WARP_SIZE],
        mask: LaneMask,
    ) {
        self.mem_op(addrs, mask, TraceOp::GmSt, 4 * V as u32, |b, site, a, m| {
            b.gm.warp_st::<V>(&mut b.stats, site, a, values, m)
        })
    }

    /// Shared-memory warp load of `V` consecutive `f32`s per lane
    /// (block-local byte offsets).
    pub fn ld_shared<const V: usize>(
        &mut self,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [[f32; V]; WARP_SIZE] {
        self.mem_op(addrs, mask, TraceOp::SmLd, 4 * V as u32, |b, site, a, m| {
            b.smem.warp_ld::<V>(&mut b.stats, site, a, m)
        })
    }

    /// Shared-memory warp store of `V` consecutive `f32`s per lane.
    pub fn st_shared<const V: usize>(
        &mut self,
        addrs: &WarpAddrs,
        values: &[[f32; V]; WARP_SIZE],
        mask: LaneMask,
    ) {
        self.mem_op(addrs, mask, TraceOp::SmSt, 4 * V as u32, |b, site, a, m| {
            b.smem.warp_st::<V>(&mut b.stats, site, a, values, m)
        })
    }

    /// Global-memory warp load through the read-only (texture) cache path:
    /// lines this block already touched are served without bus traffic.
    pub fn ld_global_ro<const V: usize>(
        &mut self,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [[f32; V]; WARP_SIZE] {
        self.mem_op(
            addrs,
            mask,
            TraceOp::GmLdRo,
            4 * V as u32,
            |b, site, a, m| b.gm.warp_ld_ro::<V>(&mut b.stats, &mut b.ro, site, a, m),
        )
    }

    /// Constant-memory warp load of one `f32` per lane (broadcast-optimized).
    pub fn ld_const(&mut self, addrs: &WarpAddrs, mask: LaneMask) -> [f32; WARP_SIZE] {
        self.mem_op(addrs, mask, TraceOp::CmLd, 4, |b, site, a, m| {
            b.cm.warp_ld_f32(&mut b.stats, site, a, m)
        })
    }

    /// Global-memory warp load of `W` raw bytes per lane (short data types).
    pub fn ld_global_bytes<const W: usize>(
        &mut self,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [[u8; W]; WARP_SIZE] {
        self.mem_op(addrs, mask, TraceOp::GmLd, W as u32, |b, site, a, m| {
            b.gm.warp_ld_bytes::<W>(&mut b.stats, site, a, m)
        })
    }

    /// Global-memory warp store of `W` raw bytes per lane.
    pub fn st_global_bytes<const W: usize>(
        &mut self,
        addrs: &WarpAddrs,
        values: &[[u8; W]; WARP_SIZE],
        mask: LaneMask,
    ) {
        self.mem_op(addrs, mask, TraceOp::GmSt, W as u32, |b, site, a, m| {
            b.gm.warp_st_bytes::<W>(&mut b.stats, site, a, values, m)
        })
    }

    /// Shared-memory warp load of `W` raw bytes per lane (short data types).
    pub fn ld_shared_bytes<const W: usize>(
        &mut self,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [[u8; W]; WARP_SIZE] {
        self.mem_op(addrs, mask, TraceOp::SmLd, W as u32, |b, site, a, m| {
            b.smem.warp_ld_bytes::<W>(&mut b.stats, site, a, m)
        })
    }

    /// Shared-memory warp store of `W` raw bytes per lane.
    pub fn st_shared_bytes<const W: usize>(
        &mut self,
        addrs: &WarpAddrs,
        values: &[[u8; W]; WARP_SIZE],
        mask: LaneMask,
    ) {
        self.mem_op(addrs, mask, TraceOp::SmSt, W as u32, |b, site, a, m| {
            b.smem.warp_st_bytes::<W>(&mut b.stats, site, a, values, m)
        })
    }

    /// Records `lane_ops` fused multiply-adds (the arithmetic itself is done
    /// on the kernel's register arrays in plain Rust).
    pub fn count_fma(&mut self, lane_ops: u64) {
        self.block.step(self.wid);
        self.block.stats.fma_lane_ops += lane_ops;
    }

    /// Records `lane_ops` non-FMA arithmetic operations (index math,
    /// predicates, ...). On real hardware these share issue slots with
    /// FMAs, which is how the implicit-GEMM baselines pay for their index
    /// decoding.
    pub fn count_alu(&mut self, lane_ops: u64) {
        self.block.step(self.wid);
        self.block.stats.alu_lane_ops += lane_ops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{install_quiet_hook, FaultPayload};
    use crate::mem::{ConstantMemory, GlobalMemory, SharedMemory};
    use crate::spec::BankWidth;
    use crate::warp::lane_addrs;

    fn harness(threads: usize) -> (GlobalMemory, ConstantMemory, BlockDims) {
        (
            GlobalMemory::new(1 << 20, 128, 32, 48 * 1024),
            ConstantMemory::new(1 << 16, 256),
            BlockDims {
                block_id: 0,
                grid_blocks: 1,
                threads,
            },
        )
    }

    fn ctx<'a>(
        dims: BlockDims,
        gm: &'a mut GlobalMemory,
        cm: &'a mut ConstantMemory,
        smem: SharedMemory,
    ) -> BlockCtx<'a> {
        let ro = RoCache::new(gm.ro_capacity_lines());
        BlockCtx::new(dims, GmPlane::Direct(gm), CmPlane::Direct(cm), ro, smem)
    }

    /// Runs `f`, which must raise a device fault, and returns the payload.
    fn trap(f: impl FnOnce() + std::panic::UnwindSafe) -> FaultPayload {
        install_quiet_hook();
        let payload = std::panic::catch_unwind(f).unwrap_err();
        *payload
            .downcast::<FaultPayload>()
            .expect("expected a typed device fault")
    }

    #[test]
    fn warps_rounds_up() {
        let d = BlockDims {
            block_id: 0,
            grid_blocks: 1,
            threads: 33,
        };
        assert_eq!(d.warps(), 2);
    }

    #[test]
    fn each_warp_visits_all_warps_in_order() {
        let (mut gm, mut cm, dims) = harness(96);
        let smem = SharedMemory::new(0, 32, BankWidth::B8);
        let mut blk = ctx(dims, &mut gm, &mut cm, smem);
        let mut seen = Vec::new();
        blk.each_warp(|w| seen.push(w.warp_id()));
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn partial_warp_population() {
        let (mut gm, mut cm, dims) = harness(40);
        let smem = SharedMemory::new(0, 32, BankWidth::B8);
        let mut blk = ctx(dims, &mut gm, &mut cm, smem);
        let mut pops = Vec::new();
        blk.each_warp(|w| pops.push(w.population().count()));
        assert_eq!(pops, vec![32, 8]);
    }

    #[test]
    fn population_masks_device_traffic() {
        let (mut gm, mut cm, dims) = harness(8);
        let buf = gm.alloc_f32(32).unwrap();
        let smem = SharedMemory::new(0, 32, BankWidth::B8);
        let mut blk = ctx(dims, &mut gm, &mut cm, smem);
        blk.each_warp(|w| {
            // Lanes beyond thread 8 must be suppressed even with ALL mask.
            w.ld_global::<1>(&lane_addrs(buf.f32_addr(0), 4), LaneMask::ALL);
        });
        assert_eq!(blk.stats.gm_ld_bytes_useful, 8 * 4);
    }

    #[test]
    fn shared_memory_roundtrip_through_warp_ctx() {
        let (mut gm, mut cm, dims) = harness(32);
        let smem = SharedMemory::new(256, 32, BankWidth::B8);
        let mut blk = ctx(dims, &mut gm, &mut cm, smem);
        blk.each_warp(|w| {
            let addrs = lane_addrs(0, 4);
            let vals: [[f32; 1]; WARP_SIZE] = std::array::from_fn(|l| [l as f32 + 0.25]);
            w.st_shared::<1>(&addrs, &vals, LaneMask::ALL);
            let back = w.ld_shared::<1>(&addrs, LaneMask::ALL);
            assert_eq!(back[3][0], 3.25);
        });
        blk.sync();
        assert_eq!(blk.stats.barriers, 1);
        assert_eq!(blk.stats.sm_ld_requests, 1);
        assert_eq!(blk.stats.sm_st_requests, 1);
    }

    #[test]
    fn fma_and_alu_counters() {
        let (mut gm, mut cm, dims) = harness(32);
        let smem = SharedMemory::new(0, 32, BankWidth::B8);
        let mut blk = ctx(dims, &mut gm, &mut cm, smem);
        blk.each_warp(|w| {
            w.count_fma(64);
            w.count_alu(3);
        });
        assert_eq!(blk.stats.fma_lane_ops, 64);
        assert_eq!(blk.stats.alu_lane_ops, 3);
        assert_eq!(blk.stats.flops(), 131);
    }

    #[test]
    fn thread_ids_are_block_local() {
        let (mut gm, mut cm, dims) = harness(64);
        let smem = SharedMemory::new(0, 32, BankWidth::B8);
        let mut blk = ctx(dims, &mut gm, &mut cm, smem);
        let mut ids = Vec::new();
        blk.each_warp(|w| ids.push(w.thread_id(5)));
        assert_eq!(ids, vec![5, 37]);
    }

    #[test]
    fn watchdog_trips_past_step_budget() {
        let p = trap(|| {
            let (mut gm, mut cm, dims) = harness(32);
            let smem = SharedMemory::new(0, 32, BankWidth::B8);
            let mut blk = ctx(dims, &mut gm, &mut cm, smem).with_step_budget(100);
            loop {
                blk.each_warp(|w| w.count_alu(1));
            }
        });
        assert!(matches!(p.kind, FaultKind::Timeout { steps } if steps > 100));
    }

    #[test]
    fn injection_flips_one_lane_address() {
        let p = trap(|| {
            let (mut gm, mut cm, dims) = harness(32);
            let buf = gm.alloc_f32(64).unwrap();
            let vals: Vec<f32> = (0..64).map(|i| i as f32).collect();
            gm.write_f32s(buf, 0, &vals).unwrap();
            let smem = SharedMemory::new(0, 32, BankWidth::B8);
            let mut blk = ctx(dims, &mut gm, &mut cm, smem).with_injection(Inject {
                op_index: 1,
                lane: 7,
                addr_xor: 1 << 41,
            });
            blk.each_warp(|w| {
                // Op 0: untouched. Op 1: lane 7's address is flipped OOB.
                w.ld_global::<1>(&lane_addrs(buf.f32_addr(0), 4), LaneMask::ALL);
                w.ld_global::<1>(&lane_addrs(buf.f32_addr(0), 4), LaneMask::ALL);
            });
        });
        assert_eq!(p.lane, 7);
        assert!(matches!(p.kind, FaultKind::OutOfBounds { addr, .. } if addr >= 1 << 41));
    }

    #[test]
    fn synccheck_flags_divergent_barrier_counts() {
        let p = trap(|| {
            let (mut gm, mut cm, dims) = harness(64);
            let smem = SharedMemory::new(0, 32, BankWidth::B8);
            let mut blk = ctx(dims, &mut gm, &mut cm, smem).with_synccheck();
            // Only warp 0 participates in the barrier: divergence.
            blk.each_warp(|w| {
                if w.warp_id() == 0 {
                    w.bar_sync();
                }
            });
            blk.finish();
        });
        match p.kind {
            FaultKind::BarrierDivergence {
                warp_min,
                count_min,
                warp_max,
                count_max,
            } => {
                assert_eq!((warp_min, count_min), (1, 0));
                assert_eq!((warp_max, count_max), (0, 1));
            }
            other => panic!("expected BarrierDivergence, got {other:?}"),
        }
    }

    #[test]
    fn tracing_records_one_event_per_memory_op_with_cost_deltas() {
        let (mut gm, mut cm, dims) = harness(40);
        let buf = gm.alloc_f32(1024).unwrap();
        let vals: Vec<f32> = (0..1024).map(|i| i as f32).collect();
        gm.write_f32s(buf, 0, &vals).unwrap();
        let smem = SharedMemory::new(8192, 32, BankWidth::B8);
        let mut blk = ctx(dims, &mut gm, &mut cm, smem).with_tracing();
        blk.each_warp(|w| {
            let gaddrs = lane_addrs(buf.f32_addr(0), 4);
            let got = w.ld_global::<1>(&gaddrs, LaneMask::ALL);
            let saddrs = lane_addrs(0, 256); // every lane hits bank 0: replays
            w.st_shared::<1>(&saddrs, &got, LaneMask::ALL);
        });
        let events = blk.events.take().unwrap();
        assert_eq!(events.len(), 4); // 2 warps x (1 gm.ld + 1 sm.st)
        assert_eq!(events[0].op, TraceOp::GmLd);
        assert_eq!(events[1].op, TraceOp::SmSt);
        assert_eq!(events[2].warp, 1);
        // Partial warp (threads=40): warp 1 has 8 live lanes.
        assert_eq!(events[2].mask.count(), 8);
        assert_eq!(events[0].mask.count(), 32);
        assert_eq!(events[0].lane_bytes, 4);
        assert_eq!(events[0].addrs[5], buf.f32_addr(0) + 20);
        // Per-event cost deltas sum back to the aggregate counters.
        let tx: u64 = events.iter().map(|e| u64::from(e.transactions)).sum();
        assert_eq!(tx, blk.stats.gm_ld_transactions);
        let st_cycles: u64 = events
            .iter()
            .filter(|e| e.op == TraceOp::SmSt)
            .map(|e| u64::from(e.cycles))
            .sum();
        assert_eq!(st_cycles, blk.stats.sm_st_cycles);
        // The bank-0 pile-up really replays: full warp serializes 32-deep.
        assert_eq!(events[1].cycles, 32);
        assert_eq!(events[3].cycles, 8);
    }

    #[test]
    fn untraced_block_buffers_no_events() {
        let (mut gm, mut cm, dims) = harness(32);
        let buf = gm.alloc_f32(32).unwrap();
        let smem = SharedMemory::new(0, 32, BankWidth::B8);
        let mut blk = ctx(dims, &mut gm, &mut cm, smem);
        blk.each_warp(|w| {
            w.ld_global::<1>(&lane_addrs(buf.f32_addr(0), 4), LaneMask::ALL);
        });
        assert!(blk.events.is_none());
        assert_eq!(blk.stats.gm_ld_requests, 1);
    }

    #[test]
    fn synccheck_accepts_uniform_barrier_counts() {
        let (mut gm, mut cm, dims) = harness(64);
        let smem = SharedMemory::new(0, 32, BankWidth::B8);
        let mut blk = ctx(dims, &mut gm, &mut cm, smem).with_synccheck();
        blk.each_warp(|w| w.bar_sync());
        blk.sync();
        blk.each_warp(|w| w.bar_sync());
        blk.finish();
    }
}

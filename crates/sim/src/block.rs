//! Cooperative thread-block execution.
//!
//! A kernel is a Rust closure invoked once per thread block with a
//! [`BlockCtx`]. Inside, code is written in the warp-synchronous style: the
//! block's warps are iterated with [`BlockCtx::each_warp`] between
//! [`BlockCtx::sync`] barriers. Because warps execute *sequentially* between
//! barriers, any kernel that is race-free under CUDA semantics (no
//! inter-warp communication without a barrier) computes exactly the same
//! result here, while every warp-level access is observed by the memory
//! models.
//!
//! Per-thread "registers" are ordinary host arrays owned by the kernel
//! closure and indexed by thread id; the launch configuration's
//! `regs_per_thread` declares their architectural footprint for the
//! occupancy model.
//!
//! A `BlockCtx` is fully self-contained: it owns its block's ports to the
//! device memories ([`GmPlane`], [`CmPlane`]), its shared memory, its
//! read-only cache, and its own [`KernelStats`]. That is what lets the
//! launcher run blocks on worker threads and merge their statistics in
//! block-id order — see [`Gpu::launch`](crate::Gpu::launch).

use crate::mem::plane::{CmPlane, GmPlane, RoCache};
use crate::mem::SharedMemory;
use crate::spec::WARP_SIZE;
use crate::stats::KernelStats;
use crate::warp::{LaneMask, WarpAddrs};

/// Geometry of the executing block within its launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDims {
    /// Linear index of this block in the grid.
    pub block_id: usize,
    /// Total number of blocks in the grid.
    pub grid_blocks: usize,
    /// Threads in this block.
    pub threads: usize,
}

impl BlockDims {
    /// Number of warps in the block (`ceil(threads / 32)`).
    pub fn warps(&self) -> usize {
        self.threads.div_ceil(WARP_SIZE)
    }
}

/// Execution context for one thread block.
///
/// Holds the block's ports to the device memories, this block's shared
/// memory, and the block-local statistics. All device traffic flows through
/// [`WarpCtx`] methods obtained from [`BlockCtx::each_warp`].
pub struct BlockCtx<'a> {
    /// Block geometry.
    pub dims: BlockDims,
    pub(crate) gm: GmPlane<'a>,
    pub(crate) cm: CmPlane<'a>,
    pub(crate) ro: RoCache,
    pub(crate) smem: SharedMemory,
    pub(crate) stats: KernelStats,
}

impl std::fmt::Debug for BlockCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCtx")
            .field("dims", &self.dims)
            .field("smem_bytes", &self.smem.len_bytes())
            .finish_non_exhaustive()
    }
}

impl<'a> BlockCtx<'a> {
    pub(crate) fn new(
        dims: BlockDims,
        gm: GmPlane<'a>,
        cm: CmPlane<'a>,
        ro: RoCache,
        smem: SharedMemory,
    ) -> Self {
        BlockCtx {
            dims,
            gm,
            cm,
            ro,
            smem,
            stats: KernelStats::default(),
        }
    }

    /// Runs `f` for every warp of the block, in warp-id order.
    ///
    /// Call this between barriers for each program phase; warps may keep
    /// per-thread state in arrays captured by the closure.
    pub fn each_warp(&mut self, mut f: impl FnMut(&mut WarpCtx<'_, 'a>)) {
        for wid in 0..self.dims.warps() {
            let mut warp = WarpCtx { block: self, wid };
            f(&mut warp);
        }
    }

    /// A `__syncthreads()` barrier: records the barrier for the timing
    /// model. (Warps are already serialized, so no scheduling is needed.)
    pub fn sync(&mut self) {
        self.stats.barriers += 1;
    }

    /// The block's shared-memory size in bytes.
    pub fn smem_bytes(&self) -> usize {
        self.smem.len_bytes()
    }
}

/// Warp-level operations for one warp of a block.
///
/// Every memory method takes per-lane byte addresses and an active-lane
/// mask; the mask is automatically intersected with the warp's population
/// (the last warp of a block may be partial).
pub struct WarpCtx<'b, 'a> {
    block: &'b mut BlockCtx<'a>,
    wid: usize,
}

impl std::fmt::Debug for WarpCtx<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarpCtx").field("wid", &self.wid).finish()
    }
}

impl WarpCtx<'_, '_> {
    /// Warp index within the block.
    pub fn warp_id(&self) -> usize {
        self.wid
    }

    /// Global (block-local) thread id of `lane`.
    pub fn thread_id(&self, lane: usize) -> usize {
        self.wid * WARP_SIZE + lane
    }

    /// Mask of lanes that correspond to real threads (all 32 except in a
    /// trailing partial warp).
    pub fn population(&self) -> LaneMask {
        let first = self.wid * WARP_SIZE;
        let remaining = self.block.dims.threads.saturating_sub(first);
        LaneMask::first(remaining.min(WARP_SIZE))
    }

    fn live(&self, mask: LaneMask) -> LaneMask {
        LaneMask(mask.0 & self.population().0)
    }

    /// Global-memory warp load of `V` consecutive `f32`s per lane.
    pub fn ld_global<const V: usize>(
        &mut self,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [[f32; V]; WARP_SIZE] {
        let m = self.live(mask);
        self.block.gm.warp_ld::<V>(&mut self.block.stats, addrs, m)
    }

    /// Global-memory warp store of `V` consecutive `f32`s per lane.
    pub fn st_global<const V: usize>(
        &mut self,
        addrs: &WarpAddrs,
        values: &[[f32; V]; WARP_SIZE],
        mask: LaneMask,
    ) {
        let m = self.live(mask);
        self.block
            .gm
            .warp_st::<V>(&mut self.block.stats, addrs, values, m);
    }

    /// Shared-memory warp load of `V` consecutive `f32`s per lane
    /// (block-local byte offsets).
    pub fn ld_shared<const V: usize>(
        &mut self,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [[f32; V]; WARP_SIZE] {
        let m = self.live(mask);
        self.block
            .smem
            .warp_ld::<V>(&mut self.block.stats, addrs, m)
    }

    /// Shared-memory warp store of `V` consecutive `f32`s per lane.
    pub fn st_shared<const V: usize>(
        &mut self,
        addrs: &WarpAddrs,
        values: &[[f32; V]; WARP_SIZE],
        mask: LaneMask,
    ) {
        let m = self.live(mask);
        self.block
            .smem
            .warp_st::<V>(&mut self.block.stats, addrs, values, m);
    }

    /// Global-memory warp load through the read-only (texture) cache path:
    /// lines this block already touched are served without bus traffic.
    pub fn ld_global_ro<const V: usize>(
        &mut self,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [[f32; V]; WARP_SIZE] {
        let m = self.live(mask);
        self.block
            .gm
            .warp_ld_ro::<V>(&mut self.block.stats, &mut self.block.ro, addrs, m)
    }

    /// Constant-memory warp load of one `f32` per lane (broadcast-optimized).
    pub fn ld_const(&mut self, addrs: &WarpAddrs, mask: LaneMask) -> [f32; WARP_SIZE] {
        let m = self.live(mask);
        self.block.cm.warp_ld_f32(&mut self.block.stats, addrs, m)
    }

    /// Global-memory warp load of `W` raw bytes per lane (short data types).
    pub fn ld_global_bytes<const W: usize>(
        &mut self,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [[u8; W]; WARP_SIZE] {
        let m = self.live(mask);
        self.block
            .gm
            .warp_ld_bytes::<W>(&mut self.block.stats, addrs, m)
    }

    /// Global-memory warp store of `W` raw bytes per lane.
    pub fn st_global_bytes<const W: usize>(
        &mut self,
        addrs: &WarpAddrs,
        values: &[[u8; W]; WARP_SIZE],
        mask: LaneMask,
    ) {
        let m = self.live(mask);
        self.block
            .gm
            .warp_st_bytes::<W>(&mut self.block.stats, addrs, values, m);
    }

    /// Shared-memory warp load of `W` raw bytes per lane (short data types).
    pub fn ld_shared_bytes<const W: usize>(
        &mut self,
        addrs: &WarpAddrs,
        mask: LaneMask,
    ) -> [[u8; W]; WARP_SIZE] {
        let m = self.live(mask);
        self.block
            .smem
            .warp_ld_bytes::<W>(&mut self.block.stats, addrs, m)
    }

    /// Shared-memory warp store of `W` raw bytes per lane.
    pub fn st_shared_bytes<const W: usize>(
        &mut self,
        addrs: &WarpAddrs,
        values: &[[u8; W]; WARP_SIZE],
        mask: LaneMask,
    ) {
        let m = self.live(mask);
        self.block
            .smem
            .warp_st_bytes::<W>(&mut self.block.stats, addrs, values, m);
    }

    /// Records `lane_ops` fused multiply-adds (the arithmetic itself is done
    /// on the kernel's register arrays in plain Rust).
    pub fn count_fma(&mut self, lane_ops: u64) {
        self.block.stats.fma_lane_ops += lane_ops;
    }

    /// Records `lane_ops` non-FMA arithmetic operations (index math,
    /// predicates, ...). On real hardware these share issue slots with
    /// FMAs, which is how the implicit-GEMM baselines pay for their index
    /// decoding.
    pub fn count_alu(&mut self, lane_ops: u64) {
        self.block.stats.alu_lane_ops += lane_ops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{ConstantMemory, GlobalMemory, SharedMemory};
    use crate::spec::BankWidth;
    use crate::warp::lane_addrs;

    fn harness(threads: usize) -> (GlobalMemory, ConstantMemory, BlockDims) {
        (
            GlobalMemory::new(1 << 20, 128, 32),
            ConstantMemory::new(1 << 16, 256),
            BlockDims {
                block_id: 0,
                grid_blocks: 1,
                threads,
            },
        )
    }

    fn ctx<'a>(
        dims: BlockDims,
        gm: &'a mut GlobalMemory,
        cm: &'a mut ConstantMemory,
        smem: SharedMemory,
    ) -> BlockCtx<'a> {
        let ro = RoCache::new(gm.ro_capacity_lines());
        BlockCtx::new(dims, GmPlane::Direct(gm), CmPlane::Direct(cm), ro, smem)
    }

    #[test]
    fn warps_rounds_up() {
        let d = BlockDims {
            block_id: 0,
            grid_blocks: 1,
            threads: 33,
        };
        assert_eq!(d.warps(), 2);
    }

    #[test]
    fn each_warp_visits_all_warps_in_order() {
        let (mut gm, mut cm, dims) = harness(96);
        let smem = SharedMemory::new(0, 32, BankWidth::B8);
        let mut blk = ctx(dims, &mut gm, &mut cm, smem);
        let mut seen = Vec::new();
        blk.each_warp(|w| seen.push(w.warp_id()));
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn partial_warp_population() {
        let (mut gm, mut cm, dims) = harness(40);
        let smem = SharedMemory::new(0, 32, BankWidth::B8);
        let mut blk = ctx(dims, &mut gm, &mut cm, smem);
        let mut pops = Vec::new();
        blk.each_warp(|w| pops.push(w.population().count()));
        assert_eq!(pops, vec![32, 8]);
    }

    #[test]
    fn population_masks_device_traffic() {
        let (mut gm, mut cm, dims) = harness(8);
        let buf = gm.alloc_f32(32).unwrap();
        let smem = SharedMemory::new(0, 32, BankWidth::B8);
        let mut blk = ctx(dims, &mut gm, &mut cm, smem);
        blk.each_warp(|w| {
            // Lanes beyond thread 8 must be suppressed even with ALL mask.
            w.ld_global::<1>(&lane_addrs(buf.f32_addr(0), 4), LaneMask::ALL);
        });
        assert_eq!(blk.stats.gm_ld_bytes_useful, 8 * 4);
    }

    #[test]
    fn shared_memory_roundtrip_through_warp_ctx() {
        let (mut gm, mut cm, dims) = harness(32);
        let smem = SharedMemory::new(256, 32, BankWidth::B8);
        let mut blk = ctx(dims, &mut gm, &mut cm, smem);
        blk.each_warp(|w| {
            let addrs = lane_addrs(0, 4);
            let vals: [[f32; 1]; WARP_SIZE] = std::array::from_fn(|l| [l as f32 + 0.25]);
            w.st_shared::<1>(&addrs, &vals, LaneMask::ALL);
            let back = w.ld_shared::<1>(&addrs, LaneMask::ALL);
            assert_eq!(back[3][0], 3.25);
        });
        blk.sync();
        assert_eq!(blk.stats.barriers, 1);
        assert_eq!(blk.stats.sm_ld_requests, 1);
        assert_eq!(blk.stats.sm_st_requests, 1);
    }

    #[test]
    fn fma_and_alu_counters() {
        let (mut gm, mut cm, dims) = harness(32);
        let smem = SharedMemory::new(0, 32, BankWidth::B8);
        let mut blk = ctx(dims, &mut gm, &mut cm, smem);
        blk.each_warp(|w| {
            w.count_fma(64);
            w.count_alu(3);
        });
        assert_eq!(blk.stats.fma_lane_ops, 64);
        assert_eq!(blk.stats.alu_lane_ops, 3);
        assert_eq!(blk.stats.flops(), 131);
    }

    #[test]
    fn thread_ids_are_block_local() {
        let (mut gm, mut cm, dims) = harness(64);
        let smem = SharedMemory::new(0, 32, BankWidth::B8);
        let mut blk = ctx(dims, &mut gm, &mut cm, smem);
        let mut ids = Vec::new();
        blk.each_warp(|w| ids.push(w.thread_id(5)));
        assert_eq!(ids, vec![5, 37]);
    }
}

//! Device faults and the opt-in sanitizer.
//!
//! Real GPUs kill a kernel that touches memory it does not own; the driver
//! reports a fault with the offending address and the launch is lost, not
//! the process. This module gives the simulator the same containment
//! boundary: every illegal device access inside a kernel closure is turned
//! into a structured [`DeviceFault`] that [`Gpu::launch`](crate::Gpu::launch)
//! returns as [`SimError::KernelFault`](crate::SimError::KernelFault) —
//! never a raw panic across the launch boundary.
//!
//! # Fault transport
//!
//! Kernel closures are arbitrary user code with no `Result` channel, so a
//! fault unwinds out of the closure as a panic carrying a typed payload and
//! is caught at the per-block boundary (`exec_block`), where it is enriched
//! with the block id and kernel name. A process-wide panic hook suppresses
//! the default "thread panicked" banner for these internal payloads only;
//! genuine kernel panics (`panic!` in kernel code) are also contained and
//! surface as [`FaultKind::KernelPanic`].
//!
//! # Sanitizer
//!
//! Bounds checking is always on — it protects the host process. The opt-in
//! [`SanitizerMode`] (or the `KCONV_SANITIZE` environment variable) adds
//! the compute-sanitizer-style tools on top:
//!
//! * **memcheck** — reads of never-written memory, tracked by shadow
//!   bitmaps over global, shared and constant memory;
//! * **racecheck** — shared-memory write/write, read/write and write/read
//!   hazards between two warps inside the same barrier interval;
//! * **synccheck** — warps of one block arriving at different numbers of
//!   [`WarpCtx::bar_sync`](crate::WarpCtx::bar_sync) barriers.
//!
//! All checks are per-access branches on state that only exists when the
//! corresponding tool is enabled; `SanitizerMode::Off` costs one `None`
//! check per launch and nothing per access.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// Which device memory space an access touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemSpace {
    /// Global (device DRAM) memory.
    Global,
    /// Per-block shared memory.
    Shared,
    /// Constant memory.
    Constant,
}

impl std::fmt::Display for MemSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
            MemSpace::Constant => "constant",
        })
    }
}

/// Whether the faulting access was a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Load,
    /// A store.
    Store,
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        })
    }
}

/// The two access orders racecheck distinguishes for an inter-warp hazard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hazard {
    /// Two warps wrote the same byte in one barrier interval.
    WriteWrite,
    /// A warp read a byte another warp wrote in the same barrier interval.
    ReadAfterWrite,
    /// A warp wrote a byte another warp read in the same barrier interval.
    WriteAfterRead,
}

impl std::fmt::Display for Hazard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Hazard::WriteWrite => "write/write",
            Hazard::ReadAfterWrite => "read-after-write",
            Hazard::WriteAfterRead => "write-after-read",
        })
    }
}

/// What went wrong inside the kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// An access fell outside the addressable/allocated range of a memory
    /// space. Always checked, sanitizer or not.
    OutOfBounds {
        /// Memory space of the access.
        space: MemSpace,
        /// Load or store.
        access: AccessKind,
        /// Faulting byte address (block-local for shared memory).
        addr: u64,
        /// Bytes the lane tried to access.
        width: u64,
        /// One past the last valid byte of the space at fault time.
        limit: u64,
    },
    /// memcheck: a read of memory no one ever wrote.
    UninitializedRead {
        /// Memory space of the read.
        space: MemSpace,
        /// First never-written byte in the accessed range.
        addr: u64,
        /// Bytes the lane read.
        width: u64,
    },
    /// racecheck: two warps touched a shared-memory byte in conflicting
    /// ways within one barrier interval.
    RaceHazard {
        /// The conflicting access pair.
        hazard: Hazard,
        /// Block-local shared-memory byte address.
        addr: u64,
        /// The other warp involved in the hazard.
        other_warp: usize,
    },
    /// synccheck: the block finished (or reached a block-wide barrier)
    /// with warps having issued different numbers of
    /// [`bar_sync`](crate::WarpCtx::bar_sync) barriers.
    BarrierDivergence {
        /// A warp with the smallest barrier count.
        warp_min: usize,
        /// Its barrier count.
        count_min: u64,
        /// A warp with the largest barrier count.
        warp_max: usize,
        /// Its barrier count.
        count_max: u64,
    },
    /// The watchdog step budget ran out (see
    /// [`Gpu::set_step_budget`](crate::Gpu::set_step_budget)).
    Timeout {
        /// Steps executed when the budget tripped.
        steps: u64,
    },
    /// The kernel closure itself panicked (an `assert!`, an index slip in
    /// host-side register arrays, ...). Contained like a device fault.
    KernelPanic {
        /// The panic message, if it was a string.
        message: String,
    },
}

impl FaultKind {
    /// The memory space involved, when the fault is about one.
    pub fn space(&self) -> Option<MemSpace> {
        match self {
            FaultKind::OutOfBounds { space, .. } | FaultKind::UninitializedRead { space, .. } => {
                Some(*space)
            }
            FaultKind::RaceHazard { .. } => Some(MemSpace::Shared),
            _ => None,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::OutOfBounds {
                space,
                access,
                addr,
                width,
                limit,
            } => write!(
                f,
                "{space}-memory {access} out of bounds: addr {addr:#x} width {width} (limit {limit:#x})"
            ),
            FaultKind::UninitializedRead { space, addr, width } => write!(
                f,
                "memcheck: read of uninitialized {space} memory at addr {addr:#x} (width {width})"
            ),
            FaultKind::RaceHazard {
                hazard,
                addr,
                other_warp,
            } => write!(
                f,
                "racecheck: {hazard} hazard on shared-memory byte {addr:#x} with warp {other_warp}"
            ),
            FaultKind::BarrierDivergence {
                warp_min,
                count_min,
                warp_max,
                count_max,
            } => write!(
                f,
                "synccheck: barrier divergence (warp {warp_min}: {count_min} barriers, warp {warp_max}: {count_max})"
            ),
            FaultKind::Timeout { steps } => {
                write!(f, "watchdog: step budget exhausted after {steps} steps")
            }
            FaultKind::KernelPanic { message } => write!(f, "kernel panicked: {message}"),
        }
    }
}

/// A contained device-side failure: what happened and exactly where.
///
/// Produced by [`Gpu::launch`](crate::Gpu::launch) inside
/// [`SimError::KernelFault`](crate::SimError::KernelFault). The first
/// faulting block id is deterministic and identical between serial and
/// parallel execution (see the [`launch`](crate::launch) module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceFault {
    /// Name of the launched kernel ([`LaunchConfig::name`](crate::LaunchConfig)).
    pub kernel: String,
    /// Grid block id of the faulting block.
    pub block: usize,
    /// Warp index within the block.
    pub warp: usize,
    /// Lane index within the warp (0 when the fault has no single lane,
    /// e.g. barrier divergence or a kernel panic).
    pub lane: usize,
    /// What went wrong.
    pub kind: FaultKind,
}

impl DeviceFault {
    /// Block-local thread id of the faulting lane (`warp * 32 + lane`).
    pub fn thread(&self) -> usize {
        self.warp * crate::spec::WARP_SIZE + self.lane
    }
}

impl std::fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} in kernel '{}', block {}, warp {}, thread {} (lane {})",
            self.kind,
            self.kernel,
            self.block,
            self.warp,
            self.thread(),
            self.lane
        )
    }
}

/// Which sanitizer tools a [`Gpu`](crate::Gpu) runs with.
///
/// The default is `Off`; set it per device with
/// [`Gpu::set_sanitizer`](crate::Gpu::set_sanitizer) or process-wide with
/// the `KCONV_SANITIZE` environment variable (`off`, `memcheck`,
/// `racecheck`, `synccheck`, `full`). Bounds checks and the fault
/// containment boundary are always active regardless of mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SanitizerMode {
    /// No extra checking (bounds checks still apply).
    #[default]
    Off,
    /// Uninitialized-read tracking via shadow bitmaps.
    Memcheck,
    /// Shared-memory hazard detection between barriers.
    Racecheck,
    /// Barrier-count divergence detection across warps.
    Synccheck,
    /// All of the above.
    Full,
}

impl SanitizerMode {
    /// Reads the `KCONV_SANITIZE` environment variable. Returns `None` when
    /// unset or unrecognized.
    pub fn from_env() -> Option<Self> {
        match std::env::var("KCONV_SANITIZE").ok()?.trim() {
            "off" | "0" => Some(SanitizerMode::Off),
            "memcheck" => Some(SanitizerMode::Memcheck),
            "racecheck" => Some(SanitizerMode::Racecheck),
            "synccheck" => Some(SanitizerMode::Synccheck),
            "full" | "1" | "all" => Some(SanitizerMode::Full),
            _ => None,
        }
    }

    pub(crate) fn memcheck(self) -> bool {
        matches!(self, SanitizerMode::Memcheck | SanitizerMode::Full)
    }

    pub(crate) fn racecheck(self) -> bool {
        matches!(self, SanitizerMode::Racecheck | SanitizerMode::Full)
    }

    pub(crate) fn synccheck(self) -> bool {
        matches!(self, SanitizerMode::Synccheck | SanitizerMode::Full)
    }
}

/// A deterministic single-access fault injector for testing the sanitizer.
///
/// When armed on a [`Gpu`](crate::Gpu), the `op_index`-th warp memory
/// operation executed by block `block` (counting every global / shared /
/// constant warp access of that block, in program order) has `lane`'s byte
/// address XORed with `addr_xor` before the access is performed. An
/// `addr_xor` with a high bit set (e.g. `1 << 41`) is out of range for
/// every modeled memory space, so the injected access faults regardless of
/// the kernel — and the reported [`DeviceFault`] must name exactly this
/// block and lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultInjection {
    /// Only kernels whose [`LaunchConfig::name`](crate::LaunchConfig)
    /// contains this substring are targeted (empty matches every kernel).
    pub kernel_substr: String,
    /// Grid block id to corrupt.
    pub block: usize,
    /// Index of the warp memory operation (within the block) to corrupt.
    pub op_index: u64,
    /// Lane whose address is corrupted.
    pub lane: usize,
    /// XOR mask applied to that lane's byte address.
    pub addr_xor: u64,
}

/// A seeded schedule of [`FaultInjection`]s over a sequence of launches —
/// the chaos-testing counterpart of the single-shot injector.
///
/// Callers number their launches (0, 1, 2, ...) and ask
/// [`injection_for`](FaultSchedule::injection_for) whether that launch
/// should be sabotaged. The decision is a pure function of `(seed,
/// launch_index)` (splitmix64), so a chaos run is exactly reproducible and
/// two schedules with the same seed agree no matter how the launches are
/// interleaved with other work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Seed mixed into every per-launch decision.
    pub seed: u64,
    /// Probability, in parts per million, that a launch inside the window
    /// is faulted.
    pub rate_ppm: u32,
    /// Only launches with `window.0 <= index < window.1` are considered.
    /// Use `(0, u64::MAX)` for an unbounded schedule.
    pub window: (u64, u64),
    /// Kernel-name filter forwarded to the produced
    /// [`FaultInjection::kernel_substr`] (empty targets every kernel).
    pub kernel_substr: String,
}

/// splitmix64 — the same dependency-free mixer used by the test RNGs.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultSchedule {
    /// A schedule faulting roughly `rate_ppm` per million launches of
    /// kernels matching `kernel_substr`, over all launch indices.
    pub fn new(seed: u64, rate_ppm: u32, kernel_substr: &str) -> Self {
        FaultSchedule {
            seed,
            rate_ppm,
            window: (0, u64::MAX),
            kernel_substr: kernel_substr.to_string(),
        }
    }

    /// Restricts the schedule to launch indices in `[start, end)`.
    pub fn with_window(mut self, start: u64, end: u64) -> Self {
        self.window = (start, end);
        self
    }

    /// The injection to arm for launch number `index`, or `None` when this
    /// launch is spared. Deterministic in `(self, index)`.
    ///
    /// The produced injection corrupts an early memory operation of block 0
    /// with a high-bit address flip (`1 << 41`), which is out of range for
    /// every modeled memory space — any kernel that touches memory faults.
    pub fn injection_for(&self, index: u64) -> Option<FaultInjection> {
        if index < self.window.0 || index >= self.window.1 {
            return None;
        }
        let roll = splitmix64(self.seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F));
        if roll % 1_000_000 >= u64::from(self.rate_ppm) {
            return None;
        }
        let detail = splitmix64(roll);
        Some(FaultInjection {
            kernel_substr: self.kernel_substr.clone(),
            block: 0,
            op_index: detail % 4,
            lane: (detail >> 8) as usize % crate::spec::WARP_SIZE,
            addr_xor: 1 << 41,
        })
    }
}

/// Where (within a block) a warp memory operation is executing: the warp id
/// and the barrier-interval counter. Threaded from [`WarpCtx`](crate::WarpCtx)
/// into the memory planes so faults and racecheck phases are attributed
/// without the planes knowing about blocks.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Site {
    pub(crate) warp: usize,
    /// Barrier-interval index: incremented at every block-wide
    /// [`sync`](crate::BlockCtx::sync). Racecheck treats accesses with
    /// equal phases as concurrent.
    pub(crate) phase: u32,
}

impl Site {
    /// A fixed site for unit tests exercising the memory layers directly.
    #[cfg(test)]
    pub(crate) const ZERO: Site = Site { warp: 0, phase: 0 };
}

/// The panic payload used for fault transport inside the crate. Private:
/// the only way to observe a fault is [`SimError::KernelFault`](crate::SimError::KernelFault).
pub(crate) struct FaultPayload {
    pub(crate) kind: FaultKind,
    pub(crate) warp: usize,
    pub(crate) lane: usize,
}

/// Unwinds out of the kernel closure with a typed fault. Caught by
/// [`contain`] at the block boundary.
#[cold]
#[inline(never)]
pub(crate) fn raise(kind: FaultKind, warp: usize, lane: usize) -> ! {
    panic::panic_any(FaultPayload { kind, warp, lane });
}

/// Installs (once, process-wide) a panic hook that silences the default
/// banner for [`FaultPayload`] panics and delegates everything else to the
/// previous hook.
pub(crate) fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<FaultPayload>() {
                return;
            }
            prev(info);
        }));
    });
}

/// Runs one block's worth of kernel code, converting any panic into a
/// [`DeviceFault`] attributed to `kernel`/`block`.
pub(crate) fn contain<T>(
    kernel: &str,
    block: usize,
    f: impl FnOnce() -> T,
) -> Result<T, DeviceFault> {
    match panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            let (kind, warp, lane) = match payload.downcast::<FaultPayload>() {
                Ok(p) => (p.kind, p.warp, p.lane),
                Err(other) => {
                    let message = if let Some(s) = other.downcast_ref::<String>() {
                        s.clone()
                    } else if let Some(s) = other.downcast_ref::<&str>() {
                        (*s).to_string()
                    } else {
                        "non-string panic payload".to_string()
                    };
                    (FaultKind::KernelPanic { message }, 0, 0)
                }
            };
            Err(DeviceFault {
                kernel: kernel.to_string(),
                block,
                warp,
                lane,
                kind,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_combines_warp_and_lane() {
        let f = DeviceFault {
            kernel: "k".into(),
            block: 3,
            warp: 2,
            lane: 5,
            kind: FaultKind::Timeout { steps: 10 },
        };
        assert_eq!(f.thread(), 69);
    }

    #[test]
    fn display_names_the_site() {
        let f = DeviceFault {
            kernel: "special K=3".into(),
            block: 7,
            warp: 1,
            lane: 4,
            kind: FaultKind::OutOfBounds {
                space: MemSpace::Global,
                access: AccessKind::Load,
                addr: 0x1000,
                width: 4,
                limit: 0x800,
            },
        };
        let s = f.to_string();
        assert!(s.contains("global-memory load out of bounds"), "{s}");
        assert!(s.contains("block 7"), "{s}");
        assert!(s.contains("warp 1"), "{s}");
        assert!(s.contains("thread 36"), "{s}");
    }

    #[test]
    fn contain_catches_typed_faults() {
        let err = contain::<()>("k", 9, || {
            raise(FaultKind::Timeout { steps: 1 }, 2, 3);
        })
        .unwrap_err();
        assert_eq!(err.block, 9);
        assert_eq!(err.warp, 2);
        assert_eq!(err.lane, 3);
        assert_eq!(err.kind, FaultKind::Timeout { steps: 1 });
    }

    #[test]
    fn contain_catches_plain_panics() {
        install_quiet_hook();
        // A plain panic still prints through the delegated previous hook;
        // capture it as a fault regardless.
        let err = contain::<()>("k", 0, || panic!("kernel assertion failed: {}", 42)).unwrap_err();
        match err.kind {
            FaultKind::KernelPanic { ref message } => {
                assert!(message.contains("kernel assertion failed: 42"))
            }
            ref other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn contain_passes_values_through() {
        assert_eq!(contain("k", 0, || 42).unwrap(), 42);
    }

    #[test]
    fn sanitizer_mode_flags() {
        assert!(!SanitizerMode::Off.memcheck());
        assert!(SanitizerMode::Memcheck.memcheck());
        assert!(!SanitizerMode::Memcheck.racecheck());
        assert!(SanitizerMode::Racecheck.racecheck());
        assert!(SanitizerMode::Synccheck.synccheck());
        assert!(
            SanitizerMode::Full.memcheck()
                && SanitizerMode::Full.racecheck()
                && SanitizerMode::Full.synccheck()
        );
    }

    #[test]
    fn fault_kind_space() {
        let k = FaultKind::UninitializedRead {
            space: MemSpace::Shared,
            addr: 0,
            width: 4,
        };
        assert_eq!(k.space(), Some(MemSpace::Shared));
        assert_eq!(FaultKind::Timeout { steps: 0 }.space(), None);
        assert_eq!(
            FaultKind::RaceHazard {
                hazard: Hazard::WriteWrite,
                addr: 0,
                other_warp: 1
            }
            .space(),
            Some(MemSpace::Shared)
        );
    }

    #[test]
    fn fault_schedule_is_deterministic_and_windowed() {
        let s = FaultSchedule::new(42, 500_000, "gemm").with_window(10, 20);
        let hits: Vec<u64> = (0..100).filter(|&i| s.injection_for(i).is_some()).collect();
        assert_eq!(
            hits,
            (0..100)
                .filter(|&i| s.injection_for(i).is_some())
                .collect::<Vec<_>>()
        );
        assert!(hits.iter().all(|&i| (10..20).contains(&i)), "{hits:?}");
        assert!(!hits.is_empty(), "50% over 10 launches should hit");
        for i in hits {
            let inj = s.injection_for(i).unwrap();
            assert_eq!(inj.kernel_substr, "gemm");
            assert_eq!(inj.addr_xor, 1 << 41);
            assert!(inj.lane < crate::spec::WARP_SIZE);
        }
        // Rate 0 never fires; rate 1e6 always fires inside the window.
        let never = FaultSchedule::new(7, 0, "");
        assert!((0..200).all(|i| never.injection_for(i).is_none()));
        let always = FaultSchedule::new(7, 1_000_000, "").with_window(0, 5);
        assert_eq!(
            (0..200)
                .filter(|&i| always.injection_for(i).is_some())
                .count(),
            5
        );
    }
}

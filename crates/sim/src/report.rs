//! Human-readable rendering of launch results.
//!
//! [`render_report`] turns a [`LaunchReport`] into the Markdown-style
//! summary the examples and harnesses print: the timing breakdown, the
//! memory-system health indicators (coalescing efficiency, bank-conflict
//! replay factor, broadcast usage), and the occupancy line.

use crate::launch::LaunchReport;
use crate::spec::GpuSpec;

/// Renders a multi-line summary of `report` for a device `spec`.
///
/// # Examples
///
/// ```
/// use kconv_sim::{render_report, Gpu, GpuSpec, LaunchConfig, LaneMask, SimMode, lane_addrs};
///
/// # fn main() -> Result<(), kconv_sim::SimError> {
/// let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
/// let buf = gpu.alloc_f32(32)?;
/// gpu.fill_f32(buf, 1.0)?;
/// let report = gpu.launch(&LaunchConfig::new("demo", 1, 32), SimMode::Full, |blk| {
///     blk.each_warp(|w| {
///         w.ld_global::<1>(&lane_addrs(buf.f32_addr(0), 4), LaneMask::ALL);
///         w.count_fma(32);
///     });
/// })?;
/// let text = render_report(&report, &GpuSpec::kepler_k40m());
/// assert!(text.contains("GFlop/s"));
/// assert!(text.contains("coalescing"));
/// # Ok(())
/// # }
/// ```
pub fn render_report(report: &LaunchReport, spec: &GpuSpec) -> String {
    let s = &report.stats;
    let t = &report.timing;
    let mut out = String::new();
    out.push_str(&format!(
        "time: {:.3} ms  |  {:.1} GFlop/s ({:.1}% of {} peak)  |  bound by {}\n",
        t.t_total * 1e3,
        t.gflops,
        100.0 * t.gflops / spec.peak_gflops(),
        spec.name,
        t.bottleneck(),
    ));
    out.push_str(&format!(
        "breakdown: compute {:.3} ms, smem {:.3} ms, cmem {:.3} ms, gmem {:.3} ms, barriers {:.3} ms, latency floor {:.3} ms\n",
        t.t_compute * 1e3,
        t.t_smem * 1e3,
        t.t_cm * 1e3,
        t.t_gm * 1e3,
        t.t_barrier * 1e3,
        t.t_latency * 1e3,
    ));
    out.push_str(&format!(
        "arithmetic: {} FMA + {} ALU lane-ops ({} flops)\n",
        s.fma_lane_ops,
        s.alu_lane_ops,
        s.flops(),
    ));
    out.push_str(&format!(
        "global mem: {:.2} MB bus / {:.2} MB useful ({:.1}% coalescing), {} ld + {} st transactions\n",
        s.gm_bytes_bus() as f64 / 1e6,
        s.gm_bytes_useful() as f64 / 1e6,
        100.0 * s.gm_coalescing_efficiency(),
        s.gm_ld_transactions,
        s.gm_st_transactions,
    ));
    if s.gm_ro_hits > 0 {
        out.push_str(&format!(
            "read-only cache: {} line hits served without bus traffic\n",
            s.gm_ro_hits
        ));
    }
    out.push_str(&format!(
        "shared mem: {} accesses, replay factor {:.3}, {:.1}% fabric utilization, {} broadcasts\n",
        s.sm_requests(),
        s.sm_replay_factor(),
        100.0 * s.sm_bandwidth_utilization(spec.smem_bytes_per_cycle()),
        s.sm_broadcasts,
    ));
    if s.sm_requests() > 0 {
        let h = s.sm_conflict_histogram;
        out.push_str(&format!(
            "bank conflicts: {:.1}% conflict-free (degree 2: {}, 3-4: {}, 5-8: {}, 9-16: {}, 17-32: {})\n",
            100.0 * s.sm_conflict_free_fraction(),
            h[1], h[2], h[3], h[4], h[5],
        ));
    }
    if s.cm_requests > 0 {
        out.push_str(&format!(
            "constant mem: {} requests, {} serialization cycles, {} line misses\n",
            s.cm_requests, s.cm_cycles, s.cm_misses,
        ));
    }
    out.push_str(&format!(
        "occupancy: {} blocks/SM ({} warps resident, limited by {}); {} of {} blocks executed\n",
        t.occupancy.blocks_per_sm,
        t.occupancy.resident_warps,
        t.occupancy.limiter,
        s.blocks_executed,
        s.blocks_total,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::{Gpu, LaunchConfig, SimMode};
    use crate::warp::{lane_addrs, lane_addrs_uniform, LaneMask};

    fn demo_report() -> (LaunchReport, GpuSpec) {
        let spec = GpuSpec::kepler_k40m();
        let mut gpu = Gpu::new(spec.clone());
        let buf = gpu.alloc_f32(64).unwrap();
        gpu.fill_f32(buf, 1.0).unwrap();
        gpu.write_const_f32(0, &[1.0]).unwrap();
        let cfg = LaunchConfig::new("demo", 4, 64).with_smem(512);
        let report = gpu
            .launch(&cfg, SimMode::Full, |blk| {
                blk.each_warp(|w| {
                    // Per-warp shared slices keep the demo racecheck-clean.
                    let sbase = w.warp_id() as u64 * 128;
                    let v = w.ld_global::<1>(&lane_addrs(buf.f32_addr(0), 4), LaneMask::ALL);
                    w.st_shared::<1>(&lane_addrs(sbase, 4), &v, LaneMask::ALL);
                    w.ld_shared::<1>(&lane_addrs(sbase, 4), LaneMask::ALL);
                    w.st_global::<1>(&lane_addrs(buf.f32_addr(32), 4), &v, LaneMask::ALL);
                    w.ld_const(&lane_addrs_uniform(0), LaneMask::ALL);
                    w.count_fma(64);
                    w.count_alu(2);
                });
                blk.sync();
            })
            .unwrap();
        (report, spec)
    }

    #[test]
    fn report_contains_every_section() {
        let (report, spec) = demo_report();
        let text = render_report(&report, &spec);
        for needle in [
            "GFlop/s",
            "bank conflicts",
            "breakdown",
            "arithmetic",
            "global mem",
            "shared mem",
            "constant mem",
            "occupancy",
            "coalescing",
        ] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
    }

    #[test]
    fn optional_sections_are_omitted_when_empty() {
        let spec = GpuSpec::kepler_k40m();
        let mut gpu = Gpu::new(spec.clone());
        let report = gpu
            .launch(&LaunchConfig::new("pure", 1, 32), SimMode::Full, |blk| {
                blk.each_warp(|w| w.count_fma(32));
            })
            .unwrap();
        let text = render_report(&report, &spec);
        assert!(!text.contains("constant mem"));
        assert!(!text.contains("read-only cache"));
    }

    #[test]
    fn counts_render_plausibly() {
        let (report, spec) = demo_report();
        let text = render_report(&report, &spec);
        assert!(text.contains("4 of 4 blocks executed"));
    }
}

//! Event counters collected while a kernel executes.
//!
//! Every warp-level memory operation and arithmetic operation performed
//! through the simulator records into a [`KernelStats`]. The counters are the
//! ground truth that the [timing model](crate::timing) converts into seconds
//! and GFlop/s, and the quantity the paper's analytic traffic formulas are
//! cross-checked against in tests.

/// Counters for one kernel launch (or one sampled subset of its blocks).
///
/// All byte counts distinguish **bus** traffic (whole transactions, e.g.
/// 128-byte global-memory segments) from **useful** traffic (bytes the lanes
/// actually requested); their ratio is the coalescing efficiency.
///
/// # Examples
///
/// ```
/// use kconv_sim::KernelStats;
/// let mut a = KernelStats::default();
/// a.fma_lane_ops = 10;
/// let mut b = KernelStats::default();
/// b.fma_lane_ops = 5;
/// a.merge(&b);
/// assert_eq!(a.fma_lane_ops, 15);
/// assert_eq!(a.flops(), 30); // 2 flops per FMA
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Fused multiply-add operations summed over all lanes (1 FMA = 2 flops).
    pub fma_lane_ops: u64,
    /// Non-FMA arithmetic lane operations (adds, max, ...), 1 flop each.
    pub alu_lane_ops: u64,

    /// Global-memory load warp instructions issued.
    pub gm_ld_requests: u64,
    /// Global-memory store warp instructions issued.
    pub gm_st_requests: u64,
    /// 128-byte segments moved by loads (the coalescing-sensitive count).
    pub gm_ld_transactions: u64,
    /// 128-byte segments moved by stores.
    pub gm_st_transactions: u64,
    /// Bus bytes moved by loads (`transactions * segment size`).
    pub gm_ld_bytes_bus: u64,
    /// Bus bytes moved by stores.
    pub gm_st_bytes_bus: u64,
    /// Bytes the lanes actually requested on loads.
    pub gm_ld_bytes_useful: u64,
    /// Bytes the lanes actually requested on stores.
    pub gm_st_bytes_useful: u64,
    /// Read-only (texture-path) load lines served from the per-block cache
    /// (free of bus traffic).
    pub gm_ro_hits: u64,

    /// Shared-memory load warp instructions issued.
    pub sm_ld_requests: u64,
    /// Shared-memory store warp instructions issued.
    pub sm_st_requests: u64,
    /// Total shared-memory cycles consumed by loads, including bank-conflict
    /// replays (a conflict-free access costs 1).
    pub sm_ld_cycles: u64,
    /// Total shared-memory cycles consumed by stores.
    pub sm_st_cycles: u64,
    /// Useful bytes moved through shared memory (loads + stores).
    pub sm_bytes_useful: u64,
    /// Accesses where at least two lanes hit the same bank *word* and were
    /// served by the broadcast mechanism instead of a replay.
    pub sm_broadcasts: u64,
    /// Histogram of shared-memory accesses by conflict degree: buckets for
    /// 1 (conflict-free), 2, 3-4, 5-8, 9-16 and 17-32 replays.
    pub sm_conflict_histogram: [u64; 6],

    /// Constant-memory load warp instructions issued.
    pub cm_requests: u64,
    /// Constant-memory cycles: 1 per distinct address within the warp (the
    /// broadcast mechanism serves identical addresses in one cycle).
    pub cm_cycles: u64,
    /// Constant-cache misses (each charged one global-memory line fetch by
    /// the timing model).
    pub cm_misses: u64,

    /// `__syncthreads()` barriers executed (summed over blocks).
    pub barriers: u64,
    /// Per-warp barrier arrivals: each barrier contributes one arrival per
    /// warp in its block, so `bar_syncs = barriers * warps_per_block` for a
    /// convergent kernel. This is the counter the pipeline work halves —
    /// `barriers` tells you *how many* rendezvous points a block ran,
    /// `bar_syncs` what they cost in warp-instructions.
    pub bar_syncs: u64,
    /// Thread blocks actually executed by the simulator.
    pub blocks_executed: u64,
    /// Thread blocks the launch logically contains (>= `blocks_executed`
    /// when sampling).
    pub blocks_total: u64,
}

impl KernelStats {
    /// Creates an all-zero counter set (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Floating-point operations represented by the counted arithmetic
    /// (2 per FMA lane op, 1 per ALU lane op).
    pub fn flops(&self) -> u64 {
        2 * self.fma_lane_ops + self.alu_lane_ops
    }

    /// Total bus bytes moved through global memory (loads + stores).
    pub fn gm_bytes_bus(&self) -> u64 {
        self.gm_ld_bytes_bus + self.gm_st_bytes_bus
    }

    /// Total useful bytes requested from global memory (loads + stores).
    pub fn gm_bytes_useful(&self) -> u64 {
        self.gm_ld_bytes_useful + self.gm_st_bytes_useful
    }

    /// Total shared-memory pipeline cycles (loads + stores, incl. replays).
    pub fn sm_cycles(&self) -> u64 {
        self.sm_ld_cycles + self.sm_st_cycles
    }

    /// Total shared-memory warp instructions.
    pub fn sm_requests(&self) -> u64 {
        self.sm_ld_requests + self.sm_st_requests
    }

    /// Global-memory coalescing efficiency in `(0, 1]`: useful bytes over
    /// bus bytes. Returns 1.0 when no traffic occurred.
    pub fn gm_coalescing_efficiency(&self) -> f64 {
        if self.gm_bytes_bus() == 0 {
            1.0
        } else {
            self.gm_bytes_useful() as f64 / self.gm_bytes_bus() as f64
        }
    }

    /// Average shared-memory cycles per warp access (1.0 = conflict-free).
    pub fn sm_replay_factor(&self) -> f64 {
        if self.sm_requests() == 0 {
            1.0
        } else {
            self.sm_cycles() as f64 / self.sm_requests() as f64
        }
    }

    /// Shared-memory bandwidth utilization against a bank capacity of
    /// `bytes_per_cycle`: useful bytes per consumed SM cycle over capacity.
    ///
    /// The paper's matched access pattern approaches 1.0; the unmatched
    /// pattern caps at `1/n`.
    pub fn sm_bandwidth_utilization(&self, bytes_per_cycle: u64) -> f64 {
        let cycles = self.sm_cycles();
        if cycles == 0 {
            0.0
        } else {
            self.sm_bytes_useful as f64 / (cycles as f64 * bytes_per_cycle as f64)
        }
    }

    /// Histogram bucket index for a conflict degree (1 -> 0, 2 -> 1,
    /// 3-4 -> 2, 5-8 -> 3, 9-16 -> 4, 17-32 -> 5).
    pub fn conflict_bucket(degree: u64) -> usize {
        match degree {
            0 | 1 => 0,
            2 => 1,
            3..=4 => 2,
            5..=8 => 3,
            9..=16 => 4,
            _ => 5,
        }
    }

    /// Fraction of shared-memory accesses that were conflict-free.
    pub fn sm_conflict_free_fraction(&self) -> f64 {
        let total: u64 = self.sm_conflict_histogram.iter().sum();
        if total == 0 {
            1.0
        } else {
            self.sm_conflict_histogram[0] as f64 / total as f64
        }
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &KernelStats) {
        self.fma_lane_ops += other.fma_lane_ops;
        self.alu_lane_ops += other.alu_lane_ops;
        self.gm_ld_requests += other.gm_ld_requests;
        self.gm_st_requests += other.gm_st_requests;
        self.gm_ld_transactions += other.gm_ld_transactions;
        self.gm_st_transactions += other.gm_st_transactions;
        self.gm_ld_bytes_bus += other.gm_ld_bytes_bus;
        self.gm_st_bytes_bus += other.gm_st_bytes_bus;
        self.gm_ld_bytes_useful += other.gm_ld_bytes_useful;
        self.gm_st_bytes_useful += other.gm_st_bytes_useful;
        self.gm_ro_hits += other.gm_ro_hits;
        self.sm_ld_requests += other.sm_ld_requests;
        self.sm_st_requests += other.sm_st_requests;
        self.sm_ld_cycles += other.sm_ld_cycles;
        self.sm_st_cycles += other.sm_st_cycles;
        self.sm_bytes_useful += other.sm_bytes_useful;
        self.sm_broadcasts += other.sm_broadcasts;
        for (a, b) in self
            .sm_conflict_histogram
            .iter_mut()
            .zip(other.sm_conflict_histogram)
        {
            *a += b;
        }
        self.cm_requests += other.cm_requests;
        self.cm_cycles += other.cm_cycles;
        self.cm_misses += other.cm_misses;
        self.barriers += other.barriers;
        self.bar_syncs += other.bar_syncs;
        self.blocks_executed += other.blocks_executed;
        self.blocks_total += other.blocks_total;
    }

    /// Returns a copy with every per-work counter multiplied by
    /// `num / den`, used to extrapolate a sampled execution of `den` blocks
    /// to a launch of `num` blocks. `blocks_total` is set to `num` and
    /// `blocks_executed` is preserved.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn scaled_to_blocks(&self, num: u64, den: u64) -> KernelStats {
        assert!(den > 0, "cannot scale stats gathered over zero blocks");
        let s = |v: u64| -> u64 {
            // Round to nearest to keep large counters accurate.
            ((v as u128 * num as u128 + (den as u128 / 2)) / den as u128) as u64
        };
        KernelStats {
            fma_lane_ops: s(self.fma_lane_ops),
            alu_lane_ops: s(self.alu_lane_ops),
            gm_ld_requests: s(self.gm_ld_requests),
            gm_st_requests: s(self.gm_st_requests),
            gm_ld_transactions: s(self.gm_ld_transactions),
            gm_st_transactions: s(self.gm_st_transactions),
            gm_ld_bytes_bus: s(self.gm_ld_bytes_bus),
            gm_st_bytes_bus: s(self.gm_st_bytes_bus),
            gm_ld_bytes_useful: s(self.gm_ld_bytes_useful),
            gm_st_bytes_useful: s(self.gm_st_bytes_useful),
            gm_ro_hits: s(self.gm_ro_hits),
            sm_ld_requests: s(self.sm_ld_requests),
            sm_st_requests: s(self.sm_st_requests),
            sm_ld_cycles: s(self.sm_ld_cycles),
            sm_st_cycles: s(self.sm_st_cycles),
            sm_bytes_useful: s(self.sm_bytes_useful),
            sm_broadcasts: s(self.sm_broadcasts),
            sm_conflict_histogram: self.sm_conflict_histogram.map(s),
            cm_requests: s(self.cm_requests),
            cm_cycles: s(self.cm_cycles),
            cm_misses: s(self.cm_misses),
            barriers: s(self.barriers),
            bar_syncs: s(self.bar_syncs),
            blocks_executed: self.blocks_executed,
            blocks_total: num,
        }
    }
}

impl std::fmt::Display for KernelStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "flops: {} (fma lane ops {})",
            self.flops(),
            self.fma_lane_ops
        )?;
        writeln!(
            f,
            "gm: {} B bus / {} B useful ({:.1}% coalesced), {} ld + {} st requests",
            self.gm_bytes_bus(),
            self.gm_bytes_useful(),
            100.0 * self.gm_coalescing_efficiency(),
            self.gm_ld_requests,
            self.gm_st_requests,
        )?;
        writeln!(
            f,
            "sm: {} cycles / {} requests (replay factor {:.2}), {} B useful, {} broadcasts",
            self.sm_cycles(),
            self.sm_requests(),
            self.sm_replay_factor(),
            self.sm_bytes_useful,
            self.sm_broadcasts,
        )?;
        writeln!(
            f,
            "cm: {} requests, {} cycles, {} misses",
            self.cm_requests, self.cm_cycles, self.cm_misses
        )?;
        write!(
            f,
            "barriers: {} ({} warp arrivals), blocks: {}/{} executed",
            self.barriers, self.bar_syncs, self.blocks_executed, self.blocks_total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KernelStats {
        KernelStats {
            fma_lane_ops: 1000,
            alu_lane_ops: 10,
            gm_ld_requests: 8,
            gm_st_requests: 4,
            gm_ld_transactions: 16,
            gm_st_transactions: 4,
            gm_ld_bytes_bus: 2048,
            gm_st_bytes_bus: 512,
            gm_ld_bytes_useful: 1024,
            gm_st_bytes_useful: 512,
            gm_ro_hits: 1,
            sm_ld_requests: 10,
            sm_st_requests: 5,
            sm_ld_cycles: 20,
            sm_st_cycles: 5,
            sm_bytes_useful: 1920,
            sm_broadcasts: 2,
            sm_conflict_histogram: [12, 2, 1, 0, 0, 0],
            cm_requests: 3,
            cm_cycles: 3,
            cm_misses: 1,
            barriers: 6,
            bar_syncs: 12,
            blocks_executed: 2,
            blocks_total: 2,
        }
    }

    #[test]
    fn flops_counts_fma_twice() {
        assert_eq!(sample().flops(), 2010);
    }

    #[test]
    fn coalescing_efficiency() {
        let s = sample();
        assert!((s.gm_coalescing_efficiency() - 1536.0 / 2560.0).abs() < 1e-12);
    }

    #[test]
    fn coalescing_efficiency_empty_is_one() {
        assert_eq!(KernelStats::default().gm_coalescing_efficiency(), 1.0);
    }

    #[test]
    fn replay_factor() {
        let s = sample();
        assert!((s.sm_replay_factor() - 25.0 / 15.0).abs() < 1e-12);
        assert_eq!(KernelStats::default().sm_replay_factor(), 1.0);
    }

    #[test]
    fn bandwidth_utilization() {
        let s = sample();
        // 1920 useful bytes over 25 cycles * 256 B/cycle capacity.
        let u = s.sm_bandwidth_utilization(256);
        assert!((u - 1920.0 / (25.0 * 256.0)).abs() < 1e-12);
        assert_eq!(KernelStats::default().sm_bandwidth_utilization(256), 0.0);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.fma_lane_ops, 2000);
        assert_eq!(a.gm_ld_bytes_bus, 4096);
        assert_eq!(a.barriers, 12);
        assert_eq!(a.bar_syncs, 24);
        assert_eq!(a.blocks_executed, 4);
    }

    #[test]
    fn scaling_extrapolates_linearly() {
        let s = sample();
        let t = s.scaled_to_blocks(8, 2);
        assert_eq!(t.fma_lane_ops, 4000);
        assert_eq!(t.gm_st_bytes_bus, 2048);
        assert_eq!(t.blocks_total, 8);
        assert_eq!(t.blocks_executed, 2);
    }

    #[test]
    fn scaling_rounds_to_nearest() {
        let s = KernelStats {
            fma_lane_ops: 10,
            ..Default::default()
        };
        // 10 * 3 / 4 = 7.5 -> 8
        assert_eq!(s.scaled_to_blocks(3, 4).fma_lane_ops, 8);
    }

    #[test]
    #[should_panic(expected = "zero blocks")]
    fn scaling_by_zero_panics() {
        sample().scaled_to_blocks(4, 0);
    }

    #[test]
    fn conflict_buckets() {
        assert_eq!(KernelStats::conflict_bucket(1), 0);
        assert_eq!(KernelStats::conflict_bucket(2), 1);
        assert_eq!(KernelStats::conflict_bucket(4), 2);
        assert_eq!(KernelStats::conflict_bucket(8), 3);
        assert_eq!(KernelStats::conflict_bucket(16), 4);
        assert_eq!(KernelStats::conflict_bucket(32), 5);
    }

    #[test]
    fn conflict_histogram_merges_and_scales() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.sm_conflict_histogram[0], 24);
        let t = sample().scaled_to_blocks(4, 2);
        assert_eq!(t.sm_conflict_histogram[1], 4);
    }

    #[test]
    fn conflict_free_fraction() {
        let s = sample();
        assert!((s.sm_conflict_free_fraction() - 12.0 / 15.0).abs() < 1e-12);
        assert_eq!(KernelStats::default().sm_conflict_free_fraction(), 1.0);
    }

    #[test]
    fn display_mentions_key_fields() {
        let text = sample().to_string();
        assert!(text.contains("flops"));
        assert!(text.contains("replay factor"));
        assert!(text.contains("barriers"));
    }
}

//! Tiny deterministic PRNG for the crate's differential property tests.
//!
//! xoshiro256++ with splitmix64 seeding — the standard dependency-free
//! combination (Blackman & Vigna). Lives here (test builds only) because
//! the sim crate cannot dev-depend on the tensor crate's generator without
//! a dependency cycle.

/// xoshiro256++ generator.
pub(crate) struct Xoshiro([u64; 4]);

impl Xoshiro {
    /// State derived from `seed` by splitmix64, as the authors recommend.
    pub(crate) fn seeded(seed: u64) -> Self {
        let mut s = seed;
        let mut split = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro([split(), split(), split(), split()])
    }

    /// Next 64 uniform bits.
    pub(crate) fn next(&mut self) -> u64 {
        let [s0, s1, s2, s3] = &mut self.0;
        let result = s0.wrapping_add(*s3).rotate_left(23).wrapping_add(*s0);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_not_degenerate() {
        let mut a = Xoshiro::seeded(42);
        let mut b = Xoshiro::seeded(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        let mut c = Xoshiro::seeded(43);
        assert_ne!(xs[0], c.next());
    }
}

//! Differential gate for the 32-lane pricing engine: every backend in
//! `kconv_sim::mem::lanes` must be bit-identical to the scalar reference
//! for every kernel, on every input — including hostile ones no real
//! kernel produces.
//!
//! The random-warp generator sweeps mask densities (empty, single-lane,
//! sparse, dense, full), widths 1/2/4/8/16, and address regimes from
//! fully-uniform through coalesced strides and duplicate-heavy shuffles to
//! scatters wide enough to force the linear fallback, plus addresses
//! adjacent to `u64::MAX` that would overflow naive `addr + width` math.
//! Seeds are fixed, so a divergence is a reproducible failure, not a
//! flake.

use kconv_sim::mem::lanes::{
    self, distinct_units_on, expand_mask_on, max_end_on, occupancy_on, unit_bounds_on,
    word_span_on, Backend,
};
use kconv_sim::pricing::{bank_conflict_cycles, segment_count};
use kconv_sim::{lane_addrs_from, BankWidth, LaneMask, WarpAddrs};

/// xoshiro256++ seeded by splitmix64 — a copy of the sim crate's
/// test-build-only PRNG (`src/testrng.rs`), which integration tests cannot
/// reach.
struct Xoshiro([u64; 4]);

impl Xoshiro {
    fn seeded(seed: u64) -> Self {
        let mut s = seed;
        let mut split = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro([split(), split(), split(), split()])
    }

    fn next(&mut self) -> u64 {
        let [s0, s1, s2, s3] = &mut self.0;
        let result = s0.wrapping_add(*s3).rotate_left(23).wrapping_add(*s0);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }
}

const WIDTHS: [u64; 5] = [1, 2, 4, 8, 16];
const UNITS: [u64; 6] = [1, 4, 8, 32, 128, 256];

/// One random warp: a mask of the requested flavor and addresses from one
/// of several regimes, chosen by the generator itself.
fn random_warp(rng: &mut Xoshiro) -> (WarpAddrs, LaneMask) {
    let mask = match rng.next() % 6 {
        0 => LaneMask::ALL,
        1 => LaneMask::NONE,
        2 => LaneMask(1 << (rng.next() % 32)), // single lane
        3 => LaneMask((rng.next() % (1 << 16)) as u32), // low-half sparse
        _ => LaneMask(rng.next() as u32),
    };
    let regime = rng.next() % 8;
    let base = match rng.next() % 4 {
        // Pin some warps right below u64::MAX so spans and ends saturate.
        0 => u64::MAX - rng.next() % 64,
        1 => rng.next() % (1 << 20),
        _ => rng.next() >> (rng.next() % 40),
    };
    let stride = [0u64, 1, 4, 8, 32, 129, 65536, 1 << 20][(rng.next() % 8) as usize];
    let addrs = match regime {
        // Uniform: every lane at the same address.
        0 => lane_addrs_from(|_| base),
        // Coalesced / strided (includes stride 0 = uniform again).
        1 | 2 => lane_addrs_from(|l| base.wrapping_add(stride.wrapping_mul(l as u64))),
        // Duplicate-heavy: a handful of distinct values shuffled over lanes.
        3 => {
            let pool: [u64; 4] = [
                base,
                base.wrapping_add(stride),
                base.wrapping_add(2 * stride),
                base.wrapping_add(rng.next() % 256),
            ];
            let picks: [usize; 32] = std::array::from_fn(|_| (rng.next() % 4) as usize);
            lane_addrs_from(|l| pool[picks[l]])
        }
        // Small scatter around the base (register-bitmap tier).
        4 => {
            let offs: [u64; 32] = std::array::from_fn(|_| rng.next() % 4096);
            lane_addrs_from(|l| base.wrapping_add(offs[l]))
        }
        // Mid scatter (stack-bitmap tier for small units).
        5 => {
            let offs: [u64; 32] = std::array::from_fn(|_| rng.next() % (1 << 20));
            lane_addrs_from(|l| base.wrapping_add(offs[l]))
        }
        // Wide scatter (linear fallback for every unit size).
        6 => {
            let offs: [u64; 32] = std::array::from_fn(|_| rng.next() >> 4);
            lane_addrs_from(|l| offs[l])
        }
        // Fully random, full range.
        _ => {
            let raw: [u64; 32] = std::array::from_fn(|_| rng.next());
            lane_addrs_from(|l| raw[l])
        }
    };
    (addrs, mask)
}

/// Asserts every kernel agrees with the scalar reference on `warp` for one
/// (width, unit) combination, on every backend this host supports.
fn assert_backends_agree(addrs: &WarpAddrs, mask: LaneMask, width: u64, unit: u64) {
    let bounds = unit_bounds_on(Backend::Scalar, addrs, width, mask, unit);
    let distinct = distinct_units_on(Backend::Scalar, addrs, width, mask, unit);
    let occ = occupancy_on(Backend::Scalar, addrs, width, mask, unit);
    let span = word_span_on(Backend::Scalar, addrs, width, mask, unit);
    // Cross-kernel invariants the scalar reference itself must satisfy:
    // the occupancy bitmap exists exactly for the bank fast-path shape
    // (non-empty mask, single-unit lanes, span under 128 units), is
    // anchored at the bounds minimum, and its population is the distinct
    // count.
    match (occ, bounds, span) {
        (Some(o), Some((lo, hi)), Some(s)) => {
            assert!(s.single && hi - lo < 128);
            assert_eq!(o.lo, lo);
            assert_eq!(
                u64::from(o.words[0].count_ones() + o.words[1].count_ones()),
                distinct
            );
        }
        (None, Some((lo, hi)), Some(s)) => assert!(!s.single || hi - lo >= 128),
        (None, None, None) => {}
        _ => panic!("kernel Some/None shapes diverged on one warp"),
    }
    let end = max_end_on(Backend::Scalar, addrs, width, mask);
    let expanded = expand_mask_on(Backend::Scalar, mask);
    for backend in lanes::Backend::available() {
        let ctx = format!(
            "backend {backend:?}, width {width}, unit {unit}, mask {:#x}",
            mask.0
        );
        assert_eq!(
            unit_bounds_on(backend, addrs, width, mask, unit),
            bounds,
            "unit_bounds diverged: {ctx}"
        );
        assert_eq!(
            distinct_units_on(backend, addrs, width, mask, unit),
            distinct,
            "distinct_units diverged: {ctx}"
        );
        assert_eq!(
            occupancy_on(backend, addrs, width, mask, unit),
            occ,
            "occupancy diverged: {ctx}"
        );
        assert_eq!(
            word_span_on(backend, addrs, width, mask, unit),
            span,
            "word_span diverged: {ctx}"
        );
        assert_eq!(
            max_end_on(backend, addrs, width, mask),
            end,
            "max_end diverged: {ctx}"
        );
        assert_eq!(
            expand_mask_on(backend, mask),
            expanded,
            "expand_mask diverged: {ctx}"
        );
    }
}

#[test]
fn backends_agree_on_ten_thousand_random_warps() {
    let mut rng = Xoshiro::seeded(0x1A5E_5EED);
    for i in 0..10_000 {
        let (addrs, mask) = random_warp(&mut rng);
        let width = WIDTHS[(rng.next() % WIDTHS.len() as u64) as usize];
        let unit = UNITS[(rng.next() % UNITS.len() as u64) as usize];
        assert_backends_agree(&addrs, mask, width, unit);
        // Spot-extra: every width for a slice of the stream, to cover
        // width × regime combinations densely without 5×-ing the runtime.
        if i % 16 == 0 {
            for w in WIDTHS {
                assert_backends_agree(&addrs, mask, w, unit);
            }
        }
    }
}

#[test]
fn backends_agree_on_edge_cases() {
    let uniform_max = lane_addrs_from(|_| u64::MAX);
    let near_max = lane_addrs_from(|l| u64::MAX - l as u64);
    let below_max = lane_addrs_from(|l| u64::MAX - 16 * l as u64);
    let zeros = lane_addrs_from(|_| 0);
    let coalesced = lane_addrs_from(|l| 4 * l as u64);
    let cases: [&WarpAddrs; 5] = [&uniform_max, &near_max, &below_max, &zeros, &coalesced];
    let masks = [
        LaneMask::NONE,
        LaneMask(1),       // one lane
        LaneMask(1 << 31), // the last lane
        LaneMask(0x8000_0001),
        LaneMask::first(7),
        LaneMask::ALL,
    ];
    for addrs in cases {
        for mask in masks {
            for width in WIDTHS {
                for unit in UNITS {
                    assert_backends_agree(addrs, mask, width, unit);
                }
            }
        }
    }
}

/// The dispatched public pricing functions — `segment_count` and
/// `bank_conflict_cycles`, the two every live model and the replayer call —
/// must price identical counters under every forced backend. Runs all
/// backends inside one test body (forcing is process-global) and restores
/// auto dispatch afterwards.
#[test]
fn forced_backend_pricing_is_bit_identical() {
    let mut rng = Xoshiro::seeded(0xD1FF_F00D);
    let mut warps = Vec::new();
    for _ in 0..2_000 {
        let (addrs, mask) = random_warp(&mut rng);
        let width = WIDTHS[(rng.next() % WIDTHS.len() as u64) as usize];
        warps.push((addrs, mask, width));
    }
    let price = |warps: &[(WarpAddrs, LaneMask, u64)]| -> Vec<(u64, u64, u64, bool)> {
        warps
            .iter()
            .map(|&(ref addrs, mask, width)| {
                let segs128 = segment_count(addrs, width, mask, 128);
                let segs32 = segment_count(addrs, width, mask, 32);
                let bank = bank_conflict_cycles(addrs, width, mask, 32, BankWidth::B8);
                (segs128, segs32, bank.cycles, bank.broadcast)
            })
            .collect()
    };
    lanes::force(Backend::Scalar);
    let reference = price(&warps);
    for backend in [Backend::Swar, Backend::Simd] {
        let installed = lanes::force(backend);
        let got = price(&warps);
        assert_eq!(got, reference, "forced {installed:?} diverged from scalar");
    }
    // Leave the process on auto dispatch for whatever runs next.
    lanes::force(Backend::Simd);
}

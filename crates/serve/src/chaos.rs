//! Seeded chaos generation: device-fault schedules and latency spikes.
//!
//! Malformed requests — the third chaos ingredient — are generated at the
//! workload level (see the `serve` bench harness); this module covers the
//! two kinds the engine itself injects around kernel launches.

use kconv_sim::{FaultInjection, FaultSchedule};
use kconv_tensor::rng::StdRng;

/// A reproducible chaos plan for one serving run.
///
/// Decisions are pure functions of `(seed, launch_index)`, so a chaos run
/// replays exactly and the engine stays deterministic under chaos.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the latency-spike stream (independent of the fault
    /// schedule's own seed).
    pub seed: u64,
    /// Device-fault schedule over the engine's launch counter.
    pub faults: FaultSchedule,
    /// Probability, in parts per million, that a launch suffers an
    /// artificial latency spike.
    pub spike_ppm: u32,
    /// Size of one spike in modeled seconds.
    pub spike_s: f64,
}

impl ChaosConfig {
    /// A plan with the given fault schedule and no latency spikes.
    pub fn new(seed: u64, faults: FaultSchedule) -> Self {
        ChaosConfig {
            seed,
            faults,
            spike_ppm: 0,
            spike_s: 0.0,
        }
    }

    /// Adds latency spikes of `spike_s` modeled seconds at `ppm` parts per
    /// million of launches.
    pub fn with_spikes(mut self, ppm: u32, spike_s: f64) -> Self {
        self.spike_ppm = ppm;
        self.spike_s = spike_s;
        self
    }

    /// The fault injection (if any) for launch number `index`.
    pub fn injection_for(&self, index: u64) -> Option<FaultInjection> {
        self.faults.injection_for(index)
    }

    /// The artificial latency (0 or `spike_s`) added to launch `index`.
    pub fn spike_for(&self, index: u64) -> f64 {
        if self.spike_ppm == 0 {
            return 0.0;
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if rng.next_u64() % 1_000_000 < u64::from(self.spike_ppm) {
            self.spike_s
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spikes_are_deterministic_and_rate_bounded() {
        let chaos = ChaosConfig::new(5, FaultSchedule::new(5, 0, "")).with_spikes(250_000, 1e-3);
        let hits: Vec<u64> = (0..400).filter(|&i| chaos.spike_for(i) > 0.0).collect();
        let again: Vec<u64> = (0..400).filter(|&i| chaos.spike_for(i) > 0.0).collect();
        assert_eq!(hits, again);
        assert!(
            !hits.is_empty() && hits.len() < 400,
            "{} spikes",
            hits.len()
        );
        let quiet = ChaosConfig::new(5, FaultSchedule::new(5, 0, ""));
        assert!((0..400).all(|i| quiet.spike_for(i) == 0.0));
    }

    #[test]
    fn injections_delegate_to_the_schedule() {
        let chaos = ChaosConfig::new(
            1,
            FaultSchedule::new(1, 1_000_000, "gemm").with_window(0, 2),
        );
        assert!(chaos.injection_for(0).is_some());
        assert!(chaos.injection_for(2).is_none());
        assert_eq!(chaos.injection_for(1).unwrap().kernel_substr, "gemm");
    }
}

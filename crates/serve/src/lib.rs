//! Resilient conv-serving layer over the kconv kernels.
//!
//! Turns the per-launch building blocks — [`Engine`](kconv_apps::Engine)
//! resolution, fallback chains, contained device faults — into a
//! request-level serving engine:
//!
//! - **Admission**: arrivals above a queue high-water mark are shed with a
//!   typed [`ServeError::QueueFull`]; self-inconsistent requests are
//!   rejected as [`ServeError::Malformed`] before touching the device.
//! - **Batching**: queued requests with the same problem shape and dtype
//!   are dispatched together, sharing one resolution from a
//!   [`PlanCache`](kconv_apps::PlanCache) and one modeled transfer.
//! - **Streams**: dispatches ride N simulated in-order streams sharing an
//!   H2D engine, a compute engine and a D2H engine ([`Streams`]), so
//!   transfers overlap compute exactly as in the CUDA multi-stream
//!   pipeline the snippet corpus measures.
//! - **Resilience**: per-request deadline budgets, bounded retry with
//!   seeded-jitter backoff ([`RetryPolicy`]), a circuit breaker per engine
//!   ([`Breaker`]), and per-request fault isolation — a poisoned batch
//!   re-enqueues its untouched members and only the faulty request pays.
//! - **Chaos**: a seeded [`ChaosConfig`] injects device faults (via
//!   [`FaultSchedule`](kconv_sim::FaultSchedule)) and latency spikes;
//!   the engine stays deterministic under chaos, which is what the
//!   `serve --check` harness exploits to prove clean requests are
//!   bit-identical with chaos on and off.
//!
//! Every submitted request reaches **exactly one** terminal state
//! ([`Outcome`]): completed, rejected, deadline-exceeded or failed.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chaos;
mod engine;
mod policy;
mod request;
mod stream;

pub use chaos::ChaosConfig;
pub use engine::{ServeConfig, ServeEngine, ServeEvent, ServeMetrics};
pub use policy::{Breaker, BreakerConfig, BreakerState, RetryPolicy};
pub use request::{Completion, ConvRequest, DType, Outcome, RequestId, Resolution, ServeError};
pub use stream::{StreamModel, Streams};

#[cfg(test)]
mod tests {
    use super::*;
    use kconv_sim::{FaultSchedule, GpuSpec};
    use kconv_tensor::{random_filters, random_maps, ConvProblem};

    fn request(seed: u64) -> ConvRequest {
        let p = ConvProblem::special(20, 2, 3);
        ConvRequest::new(
            p,
            random_maps(1, 20, 20, seed),
            random_filters(2, 1, 3, seed + 1),
        )
    }

    #[test]
    fn happy_path_completes_every_request_cleanly() {
        let mut engine = ServeEngine::new(GpuSpec::kepler_k40m(), ServeConfig::default());
        let reqs: Vec<ConvRequest> = (0..3)
            .map(|i| request(100 + i).at(i as f64 * 1e-4))
            .collect();
        let res = engine.run(reqs);
        assert_eq!(res.len(), 3);
        for r in &res {
            let c = r.outcome.completion().expect("completed");
            assert!(c.clean(), "{}: {:?}", r.id, c.faults);
            assert!(c.latency > 0.0 && c.finish >= c.latency);
        }
        let m = engine.metrics();
        assert_eq!(m.completed, 3);
        assert_eq!(m.submitted, 3);
        assert!(m.makespan > 0.0);
    }

    #[test]
    fn batching_shares_one_plan_across_same_shape_requests() {
        let mut engine = ServeEngine::new(GpuSpec::kepler_k40m(), ServeConfig::default());
        let reqs: Vec<ConvRequest> = (0..4).map(request).collect();
        engine.run(reqs);
        let m = engine.metrics();
        assert_eq!(m.plan_misses, 1, "one shape, one resolution");
        assert_eq!(m.plan_hits, 3);
        assert_eq!(m.batches, 1, "same shape and instant arrivals: one batch");
    }

    #[test]
    fn malformed_and_expired_requests_get_typed_outcomes() {
        let mut engine = ServeEngine::new(GpuSpec::kepler_k40m(), ServeConfig::default());
        let good = request(1);
        let mut bad = request(2);
        bad.input = random_maps(1, 8, 8, 9); // shape mismatch
        let hopeless = request(3).with_deadline(1e-12);
        let res = engine.run(vec![good, bad, hopeless]);
        assert!(matches!(res[0].outcome, Outcome::Completed(_)));
        assert!(matches!(
            res[1].outcome,
            Outcome::Rejected(ServeError::Malformed(_))
        ));
        assert!(matches!(
            res[2].outcome,
            Outcome::DeadlineExceeded(ServeError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn admission_control_sheds_a_burst() {
        let cfg = ServeConfig {
            queue_capacity: 2,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(GpuSpec::kepler_k40m(), cfg);
        let reqs: Vec<ConvRequest> = (0..6).map(request).collect();
        let res = engine.run(reqs);
        let shed = res
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Rejected(ServeError::QueueFull { .. })))
            .count();
        assert!(shed > 0, "burst above high-water mark must shed");
        let m = engine.metrics();
        assert_eq!(m.completed + m.rejected, 6);
    }

    #[test]
    fn chaos_faults_are_retried_and_isolated() {
        // Fault every launch in a window: the first dispatch is poisoned,
        // batchmates re-enqueue, and the faulty request either retries to
        // success (once the window passes) or fails typed.
        let chaos = ChaosConfig::new(7, FaultSchedule::new(7, 1_000_000, "").with_window(0, 2));
        let mut engine =
            ServeEngine::new(GpuSpec::kepler_k40m(), ServeConfig::default()).with_chaos(chaos);
        let reqs: Vec<ConvRequest> = (0..3).map(request).collect();
        let res = engine.run(reqs);
        let m = *engine.metrics();
        assert_eq!(m.completed, 3, "chaos window passes, everyone completes");
        assert!(m.retries > 0, "the faulted request retried");
        assert!(m.re_enqueued > 0, "batchmates were re-enqueued");
        assert!(engine
            .events()
            .iter()
            .any(|e| matches!(e, ServeEvent::BatchPoisoned { .. })));
        // The poisoned request carries its fault records.
        let dirty = res
            .iter()
            .filter_map(|r| r.outcome.completion())
            .filter(|c| !c.clean())
            .count();
        assert!(dirty >= 1);
    }

    #[test]
    fn pipeline_depth_selects_the_systolic_schedule_bit_identically() {
        // A dilated request is outside the dense engines' matrix, so Auto
        // routes it to the systolic pipeline. Forcing depth 1 vs depth 2
        // must change the schedule (engine label) but not a single output
        // bit -- the serving layer inherits the kernel's bit-identity
        // guarantee across pipeline depths.
        let p = ConvProblem::general(22, 3, 4, 3).with_dilation(2);
        let serve_at = |depth: usize| {
            let cfg = ServeConfig {
                pipeline_depth: depth,
                ..ServeConfig::default()
            };
            let mut engine = ServeEngine::new(GpuSpec::kepler_k40m(), cfg);
            let req =
                ConvRequest::new(p, random_maps(3, 22, 22, 901), random_filters(4, 3, 3, 903));
            let res = engine.run(vec![req]);
            let c = res[0].outcome.completion().expect("completed").clone();
            assert!(c.clean(), "{:?}", c.faults);
            c
        };
        let d1 = serve_at(1);
        let d2 = serve_at(2);
        let auto = serve_at(0);
        assert!(d1.engine.contains("systolic d1"), "{}", d1.engine);
        assert!(d2.engine.contains("systolic d2"), "{}", d2.engine);
        assert!(auto.engine.contains("systolic d2"), "{}", auto.engine);
        assert_eq!(d1.output.as_slice(), d2.output.as_slice());
        assert_eq!(d2.output.as_slice(), auto.output.as_slice());
    }

    #[test]
    fn same_seed_same_resolutions() {
        let chaos = ChaosConfig::new(11, FaultSchedule::new(11, 400_000, "").with_window(0, 6))
            .with_spikes(300_000, 5e-4);
        let run = |chaos: ChaosConfig| {
            let mut engine =
                ServeEngine::new(GpuSpec::kepler_k40m(), ServeConfig::default()).with_chaos(chaos);
            let reqs: Vec<ConvRequest> = (0..5).map(|i| request(i).at(i as f64 * 2e-4)).collect();
            let res = engine.run(reqs);
            (
                res.iter()
                    .map(|r| (r.id, r.outcome.label().to_string()))
                    .collect::<Vec<_>>(),
                *engine.metrics(),
            )
        };
        assert_eq!(run(chaos.clone()), run(chaos));
    }
}

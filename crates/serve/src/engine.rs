//! The serving engine: admission, batching, stream dispatch and the
//! resilience loop.

use std::collections::{BTreeMap, VecDeque};

use kconv_apps::{Engine, PlanCache};
use kconv_core::{Convolution, DataType, FaultRecord, NaiveConv, RetryClass};
use kconv_sim::{Gpu, GpuSpec, SimMode};
use kconv_tensor::rng::StdRng;

use crate::chaos::ChaosConfig;
use crate::policy::{Breaker, BreakerConfig, BreakerState, RetryPolicy};
use crate::request::{Completion, ConvRequest, DType, Outcome, RequestId, Resolution, ServeError};
use crate::stream::{StreamModel, Streams};

/// Serving-engine tuning. The defaults model a 4-stream pipeline with a
/// small batch window, a 64-deep admission queue and the default retry /
/// breaker policies.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Engine route for `F32` requests (narrow dtypes route to the
    /// special-case kernels regardless).
    pub engine: Engine,
    /// Staging-pipeline depth requested from systolic plans: `0` = auto
    /// (the deepest schedule that fits shared memory), `1` = the
    /// stage/compute baseline, `2` = double-buffered. Part of the plan
    /// cache key, so switching it never reuses a stale resolution.
    pub pipeline_depth: usize,
    /// Number of simulated streams.
    pub streams: usize,
    /// Maximum requests batched into one dispatch (same problem + dtype).
    pub max_batch: usize,
    /// Admission high-water mark: arrivals finding this many requests
    /// queued are shed with [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Retry policy per engine.
    pub retry: RetryPolicy,
    /// Circuit-breaker tuning (one breaker per engine name).
    pub breaker: BreakerConfig,
    /// Transfer-link model.
    pub transfer: StreamModel,
    /// Modeled cost of a failed kernel attempt (fault containment and
    /// teardown), charged to the serving clock.
    pub fault_penalty_s: f64,
    /// Seed for retry jitter.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            engine: Engine::Auto,
            pipeline_depth: 0,
            streams: 4,
            max_batch: 4,
            queue_capacity: 64,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            transfer: StreamModel::default(),
            fault_penalty_s: 2e-4,
            seed: 0x5EED_5EED,
        }
    }
}

/// Counters aggregated over one [`ServeEngine::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServeMetrics {
    /// Requests submitted.
    pub submitted: u64,
    /// ... that completed.
    pub completed: u64,
    /// ... that were rejected at admission (shed or malformed).
    pub rejected: u64,
    /// ... that ran out of deadline budget.
    pub deadline_exceeded: u64,
    /// ... that failed after retries (or fatally).
    pub failed: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Same-engine retry attempts.
    pub retries: u64,
    /// Batchmates re-enqueued because a batch was poisoned.
    pub re_enqueued: u64,
    /// Calls skipped because an engine's breaker was open.
    pub breaker_skips: u64,
    /// Breaker trips across all engines.
    pub breaker_trips: u64,
    /// Breaker recoveries (successful half-open probes).
    pub breaker_recoveries: u64,
    /// Plan-cache hits / misses.
    pub plan_hits: u64,
    /// Plan-cache misses (distinct resolutions computed).
    pub plan_misses: u64,
    /// Modeled time at which the last scheduled work drained.
    pub makespan: f64,
}

/// Notable state transitions, in the order they happened on the serving
/// clock.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEvent {
    /// An engine's breaker tripped open.
    BreakerOpened {
        /// Engine name.
        engine: String,
        /// Modeled time.
        at: f64,
    },
    /// An open breaker admitted a half-open probe.
    BreakerHalfOpened {
        /// Engine name.
        engine: String,
        /// Modeled time.
        at: f64,
    },
    /// A half-open probe succeeded; the breaker closed.
    BreakerClosed {
        /// Engine name.
        engine: String,
        /// Modeled time.
        at: f64,
    },
    /// A device fault poisoned a batch; the remaining members were
    /// re-enqueued.
    BatchPoisoned {
        /// The request whose execution faulted.
        faulty: RequestId,
        /// How many batchmates were sent back to the queue.
        re_enqueued: usize,
        /// Modeled time.
        at: f64,
    },
}

/// One queued request (id + payload).
#[derive(Debug, Clone)]
struct Pending {
    id: RequestId,
    req: ConvRequest,
}

/// How one member's execution ended, plus whether it poisoned the batch.
struct MemberEnd {
    outcome: Outcome,
    poisoned: bool,
    now: f64,
}

/// The queued, batching, fault-isolating serving engine.
///
/// Deterministic by construction: a single logical clock, seeded jitter,
/// seeded chaos, and kernels that are bit-identical under any
/// [`Parallelism`](kconv_sim::Parallelism). Two runs with the same
/// requests, config and chaos plan produce identical resolutions, metrics
/// and events.
#[derive(Debug)]
pub struct ServeEngine {
    spec: GpuSpec,
    cfg: ServeConfig,
    cache: PlanCache,
    breakers: BTreeMap<String, Breaker>,
    rng: StdRng,
    chaos: Option<ChaosConfig>,
    launches: u64,
    events: Vec<ServeEvent>,
    metrics: ServeMetrics,
}

impl ServeEngine {
    /// An engine serving on (simulated) `spec` hardware.
    pub fn new(spec: GpuSpec, cfg: ServeConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        ServeEngine {
            spec,
            cfg,
            cache: PlanCache::new(),
            breakers: BTreeMap::new(),
            rng,
            chaos: None,
            launches: 0,
            events: Vec::new(),
            metrics: ServeMetrics::default(),
        }
    }

    /// Arms a chaos plan: every launch consults it for fault injections
    /// and latency spikes.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Counters for the run(s) so far.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// State transitions recorded so far, in clock order.
    pub fn events(&self) -> &[ServeEvent] {
        &self.events
    }

    /// Serves a closed workload: admits `requests` in arrival order,
    /// batches compatible shapes, dispatches over the stream pipeline and
    /// drains the queue. Returns exactly one [`Resolution`] per submitted
    /// request, in submission order.
    pub fn run(&mut self, requests: Vec<ConvRequest>) -> Vec<Resolution> {
        let n = requests.len();
        self.metrics.submitted += n as u64;
        let mut resolutions: Vec<Option<Resolution>> = (0..n).map(|_| None).collect();
        let mut arrivals: Vec<Pending> = requests
            .into_iter()
            .enumerate()
            .map(|(i, req)| Pending {
                id: RequestId(i as u64),
                req,
            })
            .collect();
        arrivals.sort_by(|a, b| a.req.arrival.total_cmp(&b.req.arrival));

        let mut streams = Streams::new(self.cfg.streams);
        let mut queue: VecDeque<Pending> = VecDeque::new();
        for pending in arrivals {
            // Work the queue up to this arrival: any batch that would have
            // started strictly before now has left the queue (a batch
            // starting exactly now still sees this arrival, so
            // same-instant requests batch together).
            while !queue.is_empty() && self.earliest_start(&streams, &queue) < pending.req.arrival {
                self.dispatch(&mut streams, &mut queue, &mut resolutions);
            }
            if let Some(reason) = malformed(&pending.req) {
                self.resolve(
                    &mut resolutions,
                    pending.id,
                    Outcome::Rejected(ServeError::Malformed(reason)),
                );
            } else if queue.len() >= self.cfg.queue_capacity {
                self.resolve(
                    &mut resolutions,
                    pending.id,
                    Outcome::Rejected(ServeError::QueueFull {
                        capacity: self.cfg.queue_capacity,
                    }),
                );
            } else {
                queue.push_back(pending);
            }
        }
        while !queue.is_empty() {
            self.dispatch(&mut streams, &mut queue, &mut resolutions);
        }
        self.metrics.makespan = streams.makespan();
        let (hits, misses) = self.cache.stats();
        self.metrics.plan_hits = hits;
        self.metrics.plan_misses = misses;
        resolutions
            .into_iter()
            .map(|r| r.expect("every request reaches exactly one terminal state"))
            .collect()
    }

    /// The time the head-of-queue batch would start its H2D copy.
    fn earliest_start(&self, streams: &Streams, queue: &VecDeque<Pending>) -> f64 {
        let head = &queue[0];
        let mut s = streams.clone();
        let lane = s.pick();
        s.h2d(lane, head.req.arrival, 0.0)
    }

    /// Records a terminal state (exactly once per id) and tallies it.
    fn resolve(&mut self, resolutions: &mut [Option<Resolution>], id: RequestId, outcome: Outcome) {
        match &outcome {
            Outcome::Completed(_) => self.metrics.completed += 1,
            Outcome::Rejected(_) => self.metrics.rejected += 1,
            Outcome::DeadlineExceeded(_) => self.metrics.deadline_exceeded += 1,
            Outcome::Failed(_) => self.metrics.failed += 1,
        }
        let slot = &mut resolutions[id.0 as usize];
        assert!(slot.is_none(), "{id} resolved twice");
        *slot = Some(Resolution { id, outcome });
    }

    /// Forms a batch from the queue head, runs it on the best stream, and
    /// resolves (or re-enqueues) its members.
    fn dispatch(
        &mut self,
        streams: &mut Streams,
        queue: &mut VecDeque<Pending>,
        resolutions: &mut [Option<Resolution>],
    ) {
        let head = queue.pop_front().expect("dispatch on non-empty queue");
        let mut batch = vec![head];
        let key = (batch[0].req.problem, batch[0].req.dtype);
        let mut i = 0;
        while i < queue.len() && batch.len() < self.cfg.max_batch {
            if (queue[i].req.problem, queue[i].req.dtype) == key {
                batch.push(queue.remove(i).expect("index in bounds"));
            } else {
                i += 1;
            }
        }
        self.metrics.batches += 1;

        let lane = streams.pick();
        let ready = batch
            .iter()
            .map(|p| p.req.arrival)
            .fold(f64::NEG_INFINITY, f64::max);
        let h2d_bytes: u64 = batch.iter().map(|p| p.req.h2d_bytes()).sum();
        let h2d_end = streams.h2d(lane, ready, self.cfg.transfer.h2d_seconds(h2d_bytes));

        let mut now = streams.compute_start(lane).max(h2d_end);
        // (id, arrival, deadline, outcome) of every member that reached a
        // terminal state in this dispatch.
        let mut ended: Vec<(RequestId, f64, f64, Outcome)> = Vec::new();
        let mut d2h_bytes = 0u64;
        let mut members = batch.into_iter();
        for pending in members.by_ref() {
            let end = self.execute(&pending.req, now);
            now = end.now;
            if let Outcome::Completed(_) = &end.outcome {
                d2h_bytes += pending.req.d2h_bytes();
            }
            let poisoned = end.poisoned;
            ended.push((
                pending.id,
                pending.req.arrival,
                pending.req.deadline,
                end.outcome,
            ));
            if poisoned {
                // Fault isolation: the faulty request alone owns its fate;
                // untouched batchmates go back to the front of the queue
                // (in order) to be re-batched.
                let rest: Vec<Pending> = members.collect();
                self.events.push(ServeEvent::BatchPoisoned {
                    faulty: pending.id,
                    re_enqueued: rest.len(),
                    at: now,
                });
                self.metrics.re_enqueued += rest.len() as u64;
                for p in rest.into_iter().rev() {
                    queue.push_front(p);
                }
                break;
            }
        }
        streams.commit_compute(lane, now);
        let d2h_end = streams.d2h(lane, self.cfg.transfer.d2h_seconds(d2h_bytes));

        for (id, arrival, deadline, outcome) in ended {
            let finalized = match outcome {
                Outcome::Completed(mut c) => {
                    c.finish = d2h_end;
                    c.latency = d2h_end - arrival;
                    if d2h_end > deadline {
                        // The output exists but landed too late: the
                        // deadline is on delivery, not on compute.
                        Outcome::DeadlineExceeded(ServeError::DeadlineExceeded {
                            deadline,
                            at: d2h_end,
                        })
                    } else {
                        Outcome::Completed(c)
                    }
                }
                other => other,
            };
            self.resolve(resolutions, id, finalized);
        }
    }

    /// Runs one request's resilience loop starting at modeled time `now`:
    /// engine chain with per-engine breakers, bounded retry with seeded
    /// backoff on transient faults, deadline checks before every attempt.
    fn execute(&mut self, req: &ConvRequest, mut now: f64) -> MemberEnd {
        let mut faults: Vec<FaultRecord> = Vec::new();
        let mut chain: Vec<Box<dyn Convolution>> = Vec::new();
        // All dtypes resolve through the dtype/bank-width-aware plan
        // cache, so narrow requests get the variant matched to the
        // serving spec (e.g. half2 n=2 on a 4-byte-bank part) instead of
        // a hard-wired Kepler kernel.
        let dtype = match req.dtype {
            DType::F32 => DataType::F32,
            DType::F16 => DataType::F16,
            DType::I8 => DataType::I8,
        };
        match self.cache.plan_with_depth(
            self.cfg.engine,
            &self.spec,
            &req.problem,
            dtype,
            self.cfg.pipeline_depth,
        ) {
            Ok(plan) => chain.push(plan.instantiate()),
            Err(e) => faults.push(FaultRecord {
                engine: format!("{:?} (resolution)", self.cfg.engine),
                error: e,
            }),
        }
        for fallback in [
            Engine::ImplicitGemm
                .plan(&self.spec, &req.problem)
                .expect("implicit GEMM accepts every shape")
                .instantiate(),
            Box::new(NaiveConv::default()) as Box<dyn Convolution>,
        ] {
            if !chain.iter().any(|c| c.name() == fallback.name()) {
                chain.push(fallback);
            }
        }

        let mut poisoned = false;
        let mut attempts = 0u32;
        let mut skips = 0u32;
        let mut last_error = None;
        for conv in &chain {
            let name = conv.name();
            let breaker = self
                .breakers
                .entry(name.clone())
                .or_insert_with(|| Breaker::new(self.cfg.breaker));
            let was = breaker.state();
            if !breaker.allow(now) {
                self.metrics.breaker_skips += 1;
                skips += 1;
                continue;
            }
            if was == BreakerState::Open {
                self.events.push(ServeEvent::BreakerHalfOpened {
                    engine: name.clone(),
                    at: now,
                });
            }
            let mut engine_retries = 0u32;
            loop {
                if now >= req.deadline {
                    return MemberEnd {
                        outcome: Outcome::DeadlineExceeded(ServeError::DeadlineExceeded {
                            deadline: req.deadline,
                            at: now,
                        }),
                        poisoned,
                        now,
                    };
                }
                let index = self.launches;
                self.launches += 1;
                let (injection, spike) = match &self.chaos {
                    Some(c) => (c.injection_for(index), c.spike_for(index)),
                    None => (None, 0.0),
                };
                let mut gpu = Gpu::new(self.spec.clone());
                gpu.set_fault_injection(injection);
                attempts += 1;
                match conv.run(
                    &mut gpu,
                    &req.problem,
                    &req.input,
                    &req.filters,
                    SimMode::Full,
                ) {
                    Ok(run) => {
                        now += run.report.seconds() + spike;
                        let breaker = self.breakers.get_mut(&name).expect("breaker exists");
                        let was_half = breaker.state() == BreakerState::HalfOpen;
                        breaker.record_success();
                        if was_half {
                            self.metrics.breaker_recoveries += 1;
                            self.events.push(ServeEvent::BreakerClosed {
                                engine: name.clone(),
                                at: now,
                            });
                        }
                        return MemberEnd {
                            outcome: Outcome::Completed(Completion {
                                output: run.output,
                                engine: name,
                                finish: now,
                                latency: 0.0,
                                retries: engine_retries,
                                breaker_skips: skips,
                                faults,
                            }),
                            poisoned,
                            now,
                        };
                    }
                    Err(e) => {
                        now += spike + self.cfg.fault_penalty_s;
                        let class = e.retry_class();
                        faults.push(FaultRecord {
                            engine: name.clone(),
                            error: e.clone(),
                        });
                        let breaker = self.breakers.get_mut(&name).expect("breaker exists");
                        let tripped = breaker.record_failure(now);
                        let open = breaker.state() == BreakerState::Open;
                        if tripped {
                            self.metrics.breaker_trips += 1;
                            self.events.push(ServeEvent::BreakerOpened {
                                engine: name.clone(),
                                at: now,
                            });
                        }
                        match class {
                            RetryClass::Transient => {
                                poisoned = true;
                                if engine_retries + 1 < self.cfg.retry.max_attempts && !open {
                                    engine_retries += 1;
                                    self.metrics.retries += 1;
                                    now += self.cfg.retry.backoff(engine_retries, &mut self.rng);
                                    continue;
                                }
                                last_error = Some(e);
                                break;
                            }
                            RetryClass::Fallback => {
                                last_error = Some(e);
                                break;
                            }
                            RetryClass::Fatal => {
                                return MemberEnd {
                                    outcome: Outcome::Failed(ServeError::Fatal(e)),
                                    poisoned,
                                    now,
                                };
                            }
                        }
                    }
                }
            }
        }
        MemberEnd {
            outcome: Outcome::Failed(ServeError::FailedAfterRetries {
                attempts,
                last: last_error
                    .unwrap_or(kconv_core::ConvError::Config("no engine available".into())),
            }),
            poisoned,
            now,
        }
    }
}

/// Why a request cannot be admitted, when it cannot.
fn malformed(req: &ConvRequest) -> Option<String> {
    if !req.problem.matches(&req.input, &req.filters) {
        return Some(format!(
            "data does not match {} (input {}x{}x{}, filters {}x{}x{}x{})",
            req.problem,
            req.input.channels(),
            req.input.height(),
            req.input.width(),
            req.filters.count(),
            req.filters.channels(),
            req.filters.k(),
            req.filters.k(),
        ));
    }
    if req.dtype != DType::F32 && req.problem.channels != 1 {
        return Some(format!(
            "{:?} routes to the special-case kernels, which require C = 1 (got C = {})",
            req.dtype, req.problem.channels
        ));
    }
    if !req.deadline.is_nan() && req.deadline < req.arrival {
        return Some(format!(
            "deadline {:.6}s predates arrival {:.6}s",
            req.deadline, req.arrival
        ));
    }
    None
}

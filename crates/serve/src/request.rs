//! Requests, terminal states and the typed serving errors.

use kconv_core::{ConvError, FaultRecord};
use kconv_tensor::{ConvProblem, FeatureMaps, FilterSet};

/// Identifies a request within one [`ServeEngine::run`] call, assigned in
/// submission order.
///
/// [`ServeEngine::run`]: crate::ServeEngine::run
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// The numeric precision a request asks for. Routes to the matching
/// kernel family: `F32` through the configured [`Engine`], the narrow
/// dtypes through the paper's special-case fp16/int8 kernels (which
/// require `C = 1`).
///
/// [`Engine`]: kconv_apps::Engine
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DType {
    /// Single precision (every engine).
    #[default]
    F32,
    /// Half precision via the special-case fp16 kernel.
    F16,
    /// 8-bit integer via the special-case int8 kernel.
    I8,
}

impl DType {
    /// Modeled bytes per element on the transfer link.
    pub fn width(self) -> u64 {
        match self {
            DType::F32 => 4,
            DType::F16 => 2,
            DType::I8 => 1,
        }
    }
}

/// One convolution request: a problem shape plus its data, stamped with a
/// modeled arrival time and an absolute deadline.
///
/// Times are in *modeled* seconds on the serving clock (the same clock the
/// simulator's [`Timing`](kconv_sim::timing::Timing) model uses), not wall
/// time, so a serving schedule is exactly reproducible.
#[derive(Debug, Clone)]
pub struct ConvRequest {
    /// The convolution to perform.
    pub problem: ConvProblem,
    /// Requested precision.
    pub dtype: DType,
    /// Input feature maps (must match `problem`).
    pub input: FeatureMaps,
    /// Filter bank (must match `problem`).
    pub filters: FilterSet,
    /// Modeled arrival time in seconds.
    pub arrival: f64,
    /// Absolute modeled deadline in seconds ([`f64::INFINITY`] = none).
    pub deadline: f64,
}

impl ConvRequest {
    /// A request arriving at time zero with no deadline, in `F32`.
    pub fn new(problem: ConvProblem, input: FeatureMaps, filters: FilterSet) -> Self {
        ConvRequest {
            problem,
            dtype: DType::F32,
            input,
            filters,
            arrival: 0.0,
            deadline: f64::INFINITY,
        }
    }

    /// Sets the modeled arrival time.
    pub fn at(mut self, arrival: f64) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the absolute modeled deadline.
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the requested precision.
    pub fn with_dtype(mut self, dtype: DType) -> Self {
        self.dtype = dtype;
        self
    }

    /// Modeled bytes moved host-to-device for this request (input +
    /// filters at the dtype's width).
    pub fn h2d_bytes(&self) -> u64 {
        let elems = (self.input.as_slice().len() + self.filters.as_slice().len()) as u64;
        elems * self.dtype.width()
    }

    /// Modeled bytes moved device-to-host (the f32 output maps).
    pub fn d2h_bytes(&self) -> u64 {
        (self.problem.filters * self.problem.out_height() * self.problem.out_width()) as u64 * 4
    }
}

/// Typed serving failures — every non-`Completed` terminal state carries
/// one.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// Admission control shed the request: the queue was at its
    /// high-water mark when it arrived.
    QueueFull {
        /// The configured high-water mark.
        capacity: usize,
    },
    /// The request is self-inconsistent (data/shape mismatch, or a dtype
    /// the problem cannot route to).
    Malformed(String),
    /// The request could not complete within its deadline budget.
    DeadlineExceeded {
        /// The absolute deadline.
        deadline: f64,
        /// The modeled time at which the budget was found exhausted.
        at: f64,
    },
    /// Every engine in the chain failed (after its retry budget).
    FailedAfterRetries {
        /// Total kernel attempts made.
        attempts: u32,
        /// The last engine's error.
        last: ConvError,
    },
    /// A fatal host-side error aborted the request immediately.
    Fatal(ConvError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "queue at high-water mark ({capacity}), request shed")
            }
            ServeError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            ServeError::DeadlineExceeded { deadline, at } => {
                write!(f, "deadline {deadline:.6}s exceeded at {at:.6}s")
            }
            ServeError::FailedAfterRetries { attempts, last } => {
                write!(f, "failed after {attempts} attempts: {last}")
            }
            ServeError::Fatal(e) => write!(f, "fatal: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A successfully served request.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The output feature maps.
    pub output: FeatureMaps,
    /// [`Convolution::name`](kconv_core::Convolution::name) of the engine
    /// that produced the output.
    pub engine: String,
    /// Modeled completion time (output landed on the host).
    pub finish: f64,
    /// Modeled latency: `finish - arrival`.
    pub latency: f64,
    /// Same-engine retries that preceded success.
    pub retries: u32,
    /// Engines skipped because their circuit breaker was open when this
    /// request reached them.
    pub breaker_skips: u32,
    /// Every absorbed failure on the way to this output (resolution
    /// rejections, faulted attempts, abandoned engines), in order.
    pub faults: Vec<FaultRecord>,
}

impl Completion {
    /// Whether this request was served cleanly: first attempt, first
    /// engine, nothing absorbed, no breaker detour. Clean completions are
    /// bit-identical whether chaos was injected around them or not — a
    /// breaker skip disqualifies because the output then comes from a
    /// different (fallback) engine than a chaos-free run would use.
    pub fn clean(&self) -> bool {
        self.retries == 0 && self.breaker_skips == 0 && self.faults.is_empty()
    }
}

/// The exactly-one terminal state every submitted request reaches.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Served: output produced and "transferred back" before any
    /// deadline.
    Completed(Completion),
    /// Never admitted (shed by admission control or malformed).
    Rejected(ServeError),
    /// Admitted but the deadline budget ran out
    /// ([`ServeError::DeadlineExceeded`]).
    DeadlineExceeded(ServeError),
    /// Admitted but every engine failed
    /// ([`ServeError::FailedAfterRetries`] or [`ServeError::Fatal`]).
    Failed(ServeError),
}

impl Outcome {
    /// Short label for reports: `completed`, `rejected`,
    /// `deadline-exceeded` or `failed`.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Completed(_) => "completed",
            Outcome::Rejected(_) => "rejected",
            Outcome::DeadlineExceeded(_) => "deadline-exceeded",
            Outcome::Failed(_) => "failed",
        }
    }

    /// The completion when this outcome is [`Outcome::Completed`].
    pub fn completion(&self) -> Option<&Completion> {
        match self {
            Outcome::Completed(c) => Some(c),
            _ => None,
        }
    }
}

/// The terminal record for one request: every [`ServeEngine::run`] returns
/// exactly one per submitted request, in submission order.
///
/// [`ServeEngine::run`]: crate::ServeEngine::run
#[derive(Debug, Clone)]
pub struct Resolution {
    /// Which request.
    pub id: RequestId,
    /// How it ended.
    pub outcome: Outcome,
}

#[cfg(test)]
mod tests {
    use super::*;
    use kconv_tensor::{random_filters, random_maps};

    #[test]
    fn request_builders_and_byte_model() {
        let p = ConvProblem::special(8, 2, 3);
        let req = ConvRequest::new(p, random_maps(1, 8, 8, 1), random_filters(2, 1, 3, 2))
            .at(1.5)
            .with_deadline(2.0)
            .with_dtype(DType::F16);
        assert_eq!(req.arrival, 1.5);
        assert_eq!(req.deadline, 2.0);
        assert_eq!(req.h2d_bytes(), (8 * 8 + 2 * 9) as u64 * 2);
        assert_eq!(req.d2h_bytes(), (2 * 6 * 6) as u64 * 4);
    }

    #[test]
    fn errors_display_and_outcome_labels() {
        let e = ServeError::QueueFull { capacity: 4 };
        assert!(e.to_string().contains("high-water"));
        assert_eq!(Outcome::Rejected(e).label(), "rejected");
        let e = ServeError::DeadlineExceeded {
            deadline: 0.5,
            at: 0.7,
        };
        assert!(e.to_string().contains("0.5"));
        assert_eq!(Outcome::DeadlineExceeded(e).label(), "deadline-exceeded");
        let e = ServeError::Malformed("shape".into());
        assert!(e.to_string().contains("shape"));
        let e = ServeError::FailedAfterRetries {
            attempts: 3,
            last: ConvError::Config("x".into()),
        };
        assert!(e.to_string().contains("3 attempts"));
        assert_eq!(Outcome::Failed(e).label(), "failed");
    }
}

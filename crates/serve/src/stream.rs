//! The modeled stream timeline: N in-order streams sharing one H2D copy
//! engine, one compute engine and one D2H copy engine.
//!
//! This mirrors how CUDA streams overlap on a single GPU with two copy
//! engines: operations *within* a stream execute in order, the copy
//! engines run concurrently with compute, and kernels themselves serialize
//! on the device. With one stream every batch runs
//! `H2D -> compute -> D2H` back to back; with several, the H2D of the next
//! batch hides under the compute of the current one, which is exactly the
//! win SNIPPETS' 4-stream pipeline measures.

/// Transfer-link model: modeled PCIe bandwidths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamModel {
    /// Host-to-device bandwidth in GB/s.
    pub h2d_gbs: f64,
    /// Device-to-host bandwidth in GB/s.
    pub d2h_gbs: f64,
}

impl Default for StreamModel {
    fn default() -> Self {
        // Effective PCIe gen3 x16 rates for pinned transfers.
        StreamModel {
            h2d_gbs: 6.0,
            d2h_gbs: 6.5,
        }
    }
}

impl StreamModel {
    /// Modeled seconds to move `bytes` host-to-device.
    pub fn h2d_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.h2d_gbs * 1e9)
    }

    /// Modeled seconds to move `bytes` device-to-host.
    pub fn d2h_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.d2h_gbs * 1e9)
    }
}

/// Busy-until bookkeeping for the three shared engines plus each stream's
/// in-order tail. All times are modeled seconds.
#[derive(Debug, Clone)]
pub struct Streams {
    h2d_free: f64,
    compute_free: f64,
    d2h_free: f64,
    tails: Vec<f64>,
}

impl Streams {
    /// `n` idle streams (at least one).
    pub fn new(n: usize) -> Self {
        Streams {
            h2d_free: 0.0,
            compute_free: 0.0,
            d2h_free: 0.0,
            tails: vec![0.0; n.max(1)],
        }
    }

    /// The stream whose tail frees earliest (lowest index on ties).
    pub fn pick(&self) -> usize {
        let mut best = 0;
        for (i, &t) in self.tails.iter().enumerate() {
            if t < self.tails[best] {
                best = i;
            }
        }
        best
    }

    /// Schedules an H2D copy of `seconds` on `stream`, not before `ready`.
    /// Returns the copy's end time.
    pub fn h2d(&mut self, stream: usize, ready: f64, seconds: f64) -> f64 {
        let start = ready.max(self.h2d_free).max(self.tails[stream]);
        let end = start + seconds;
        self.h2d_free = end;
        self.tails[stream] = end;
        end
    }

    /// The earliest time a kernel issued on `stream` may start (compute
    /// engine free and the stream's prior work drained).
    pub fn compute_start(&self, stream: usize) -> f64 {
        self.compute_free.max(self.tails[stream])
    }

    /// Commits compute occupancy on `stream` until `end`.
    pub fn commit_compute(&mut self, stream: usize, end: f64) {
        self.compute_free = self.compute_free.max(end);
        self.tails[stream] = self.tails[stream].max(end);
    }

    /// Schedules a D2H copy of `seconds` on `stream`. Returns its end time.
    pub fn d2h(&mut self, stream: usize, seconds: f64) -> f64 {
        let start = self.d2h_free.max(self.tails[stream]);
        let end = start + seconds;
        self.d2h_free = end;
        self.tails[stream] = end;
        end
    }

    /// When everything scheduled so far has drained.
    pub fn makespan(&self) -> f64 {
        self.tails.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pushes `n` identical batches through `streams` streams and returns
    /// the makespan.
    fn pipeline(streams: usize, n: usize, h2d: f64, compute: f64, d2h: f64) -> f64 {
        let mut s = Streams::new(streams);
        for _ in 0..n {
            let lane = s.pick();
            let t = s.h2d(lane, 0.0, h2d);
            let start = s.compute_start(lane).max(t);
            s.commit_compute(lane, start + compute);
            s.d2h(lane, d2h);
        }
        s.makespan()
    }

    #[test]
    fn single_stream_serializes_multi_stream_overlaps() {
        let one = pipeline(1, 4, 1.0, 3.0, 1.0);
        assert_eq!(one, 4.0 * 5.0, "one stream: strict back-to-back");
        let four = pipeline(4, 4, 1.0, 3.0, 1.0);
        // Kernels still serialize (4 x 3s of compute) but copies hide
        // under compute: first H2D and last D2H stick out.
        assert_eq!(four, 1.0 + 4.0 * 3.0 + 1.0);
        assert!(four < one);
    }

    #[test]
    fn copy_engines_are_shared_across_streams() {
        let mut s = Streams::new(2);
        let a = s.h2d(0, 0.0, 2.0);
        let b = s.h2d(1, 0.0, 2.0);
        assert_eq!((a, b), (2.0, 4.0), "one H2D engine, copies queue");
    }

    #[test]
    fn transfer_model_converts_bytes() {
        let m = StreamModel {
            h2d_gbs: 2.0,
            d2h_gbs: 4.0,
        };
        assert_eq!(m.h2d_seconds(2_000_000_000), 1.0);
        assert_eq!(m.d2h_seconds(2_000_000_000), 0.5);
    }
}

//! Resilience policies: bounded retry with seeded-jitter backoff, and a
//! per-engine circuit breaker.

use kconv_tensor::rng::StdRng;

/// Bounded retry with exponential backoff and deterministic jitter.
///
/// Jitter is drawn from the caller's seeded xoshiro256++ generator, so two
/// serving runs with the same seed back off by exactly the same amounts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum kernel attempts per engine (1 = no retries).
    pub max_attempts: u32,
    /// Base backoff in modeled seconds before the second attempt.
    pub backoff_s: f64,
    /// Jitter fraction: each backoff is scaled by a factor in
    /// `[1, 1 + jitter_frac)`.
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_s: 2e-4,
            jitter_frac: 0.5,
        }
    }
}

impl RetryPolicy {
    /// The modeled backoff before retrying after failed attempt number
    /// `attempt` (1-based): `backoff_s * 2^(attempt-1)`, jittered.
    pub fn backoff(&self, attempt: u32, rng: &mut StdRng) -> f64 {
        let expo = self.backoff_s * f64::from(1u32 << (attempt - 1).min(16));
        expo * (1.0 + self.jitter_frac * f64::from(rng.gen_f32()))
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub trip_after: u32,
    /// Modeled seconds an open breaker rejects traffic before half-opening
    /// for a probe.
    pub cooldown_s: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            trip_after: 3,
            cooldown_s: 0.05,
        }
    }
}

/// Circuit-breaker states (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: traffic flows, consecutive failures are counted.
    Closed,
    /// Tripped: traffic is rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe is allowed through; its outcome closes
    /// or re-opens the breaker.
    HalfOpen,
}

/// A per-engine circuit breaker over modeled time.
///
/// `K = trip_after` consecutive failures trip it [`Open`]; after
/// `cooldown_s` it [`HalfOpen`]s and admits a probe; a probe success
/// closes it, a probe failure re-opens it.
///
/// [`Open`]: BreakerState::Open
/// [`HalfOpen`]: BreakerState::HalfOpen
#[derive(Debug, Clone)]
pub struct Breaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive: u32,
    open_until: f64,
    trips: u64,
    recoveries: u64,
}

impl Breaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        Breaker {
            cfg,
            state: BreakerState::Closed,
            consecutive: 0,
            open_until: 0.0,
            trips: 0,
            recoveries: 0,
        }
    }

    /// Whether a call may proceed at modeled time `now`. An open breaker
    /// whose cooldown has elapsed transitions to half-open and admits the
    /// call as its probe.
    pub fn allow(&mut self, now: f64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now >= self.open_until {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful call. A half-open probe success closes the
    /// breaker and counts as a recovery.
    pub fn record_success(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.recoveries += 1;
        }
        self.state = BreakerState::Closed;
        self.consecutive = 0;
    }

    /// Records a failed call at modeled time `now`. Returns `true` when
    /// this failure tripped the breaker open (from closed after
    /// `trip_after` consecutive failures, or a failed half-open probe).
    pub fn record_failure(&mut self, now: f64) -> bool {
        self.consecutive += 1;
        let trip = match self.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive >= self.cfg.trip_after,
            BreakerState::Open => false,
        };
        if trip {
            self.state = BreakerState::Open;
            self.open_until = now + self.cfg.cooldown_s;
            self.consecutive = 0;
            self.trips += 1;
        }
        trip
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times this breaker tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// How many half-open probes succeeded (closed the breaker).
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_is_seeded() {
        let policy = RetryPolicy::default();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let x1 = policy.backoff(1, &mut a);
        let x2 = policy.backoff(2, &mut a);
        assert!(x1 >= policy.backoff_s && x1 < policy.backoff_s * 1.5);
        assert!(x2 > x1, "exponential growth");
        assert_eq!(policy.backoff(1, &mut b), x1, "same seed, same jitter");
    }

    #[test]
    fn breaker_trips_half_opens_and_recovers() {
        let mut b = Breaker::new(BreakerConfig {
            trip_after: 3,
            cooldown_s: 1.0,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.record_failure(0.0));
        assert!(!b.record_failure(0.1));
        assert!(b.record_failure(0.2), "third consecutive failure trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(0.5), "cooldown still running");
        assert!(b.allow(1.3), "cooldown elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!((b.trips(), b.recoveries()), (1, 1));
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = Breaker::new(BreakerConfig {
            trip_after: 1,
            cooldown_s: 1.0,
        });
        assert!(b.record_failure(0.0));
        assert!(b.allow(1.0));
        assert!(b.record_failure(1.0), "failed probe re-trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(1.5));
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut b = Breaker::new(BreakerConfig {
            trip_after: 2,
            cooldown_s: 1.0,
        });
        assert!(!b.record_failure(0.0));
        b.record_success();
        assert!(!b.record_failure(0.1), "count restarted");
        assert_eq!(b.state(), BreakerState::Closed);
    }
}

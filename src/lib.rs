//! # kconv — memory-efficient GPU convolution kernels, reproduced in Rust
//!
//! A full reproduction of *"Optimizing Memory Efficiency for Convolution
//! Kernels on Kepler GPUs"* (Chen, Chen, Chen, Hu — DAC 2017) as a pure-Rust
//! workspace: the paper's two direct-convolution kernels and its baselines,
//! running on a warp-level simulator of the Kepler memory hierarchy.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`sim`] — the GPU simulator (shared-memory banks, coalescing,
//!   constant-memory broadcast, timing model);
//! * [`tensor`] — host tensors and problem descriptors;
//! * [`core`] — the paper's kernels, baselines, traffic model and tuner;
//! * [`arch`] — the architecture-adaptive kernel generator: derives the
//!   matched vector factor for any spec/dtype (eq. 1 in reverse) and
//!   proves it by trace replay;
//! * [`systolic`] — the double-buffered staging pipeline executor:
//!   ping/pong shared-memory rounds (one barrier per round instead of two)
//!   over the strided/dilated/depthwise workload matrix;
//! * [`gemm`] — the blocked SGEMM kernels of the Fig. 2 motivation
//!   experiment;
//! * [`trace`] — binary warp traces and memory-efficiency analysis on top
//!   of the simulator's [`TraceSink`](kconv_sim::TraceSink) hook;
//! * [`replay`] — the trace-driven replay engine: re-prices captured
//!   traces under an arbitrary [`GpuSpec`](kconv_sim::GpuSpec) without
//!   re-executing the kernel;
//! * [`apps`] — image processing and CNN layer stacks on the public API;
//! * [`serve`] — the resilient request-serving layer: admission control,
//!   shape-batched dispatch over simulated streams, deadlines, retries,
//!   circuit breakers and chaos-testable fault isolation.
//!
//! The [`prelude`] pulls in the names a typical user needs.
//!
//! ## Quickstart
//!
//! ```
//! use kconv::prelude::*;
//!
//! # fn main() -> Result<(), kconv::core::ConvError> {
//! let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
//! let problem = ConvProblem::special(128, 4, 3);
//! let image = random_maps(1, 128, 128, 1);
//! let filters = random_filters(4, 1, 3, 2);
//!
//! let run = SpecialConv::default().run(&mut gpu, &problem, &image, &filters, SimMode::Full)?;
//! println!("{:.1} GFlop/s (modeled)", run.effective_gflops(&problem));
//! run.verify_executed(&problem, &image, &filters, CONV_TOL).expect("correct");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use kconv_apps as apps;
pub use kconv_arch as arch;
pub use kconv_core as core;
pub use kconv_gemm as gemm;
pub use kconv_replay as replay;
pub use kconv_serve as serve;
pub use kconv_sim as sim;
pub use kconv_systolic as systolic;
pub use kconv_tensor as tensor;
pub use kconv_trace as trace;

/// The most commonly used names of the workspace, re-exported flat.
pub mod prelude {
    pub use kconv_apps::{edge_detect, smooth, template_match, Engine, LayerStack};
    pub use kconv_core::{
        conv_reference, ConvRun, Convolution, ExplicitGemmConv, GeneralConfig, GeneralConv,
        ImplicitGemmConv, SpecialConfig, SpecialConv,
    };
    pub use kconv_gemm::{launch_gemm, GemmConfig, GemmShape};
    pub use kconv_sim::{Gpu, GpuSpec, Parallelism, SimMode};
    pub use kconv_systolic::{PipelineConfig, SystolicConv};
    pub use kconv_tensor::{
        random_filters, random_image, random_maps, ConvProblem, FeatureMaps, FilterSet, Image,
        CONV_TOL,
    };
}

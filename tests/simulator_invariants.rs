//! Property-based invariants of the simulator substrate: the bank-conflict
//! model, coalescing, statistics scaling, and sampled-vs-full equivalence.

use kconv::sim::{
    bank_conflict_cycles, lane_addrs_from, BankWidth, Gpu, GpuSpec, KernelStats, LaneMask,
    LaunchConfig, SimMode, WARP_SIZE,
};
use proptest::prelude::*;

fn arb_addrs() -> impl Strategy<Value = [u64; WARP_SIZE]> {
    prop::array::uniform32(0u64..4096).prop_map(|a| a.map(|v| v * 4))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Replay count is bounded by the active lane count (a lane contributes
    /// at most ceil(width/bank) words to any one bank).
    #[test]
    fn conflict_cycles_bounded(addrs in arb_addrs(), mask_bits in any::<u32>()) {
        let mask = LaneMask(mask_bits);
        for bw in [BankWidth::B4, BankWidth::B8] {
            let out = bank_conflict_cycles(&addrs, 4, mask, 32, bw);
            prop_assert!(out.cycles >= 1);
            prop_assert!(out.cycles <= (mask.count().max(1)) as u64);
        }
    }

    /// For *contiguous* scalar accesses (the pattern every kernel here
    /// uses for staging), both bank widths are conflict-free from any
    /// 4-byte-aligned base.
    #[test]
    fn contiguous_scalar_accesses_are_conflict_free(base in 0u64..4096) {
        let addrs = lane_addrs_from(|l| base * 4 + l as u64 * 4);
        for bw in [BankWidth::B4, BankWidth::B8] {
            let out = bank_conflict_cycles(&addrs, 4, LaneMask::ALL, 32, bw);
            prop_assert_eq!(out.cycles, 1);
        }
    }

    /// Deactivating lanes never increases the cost.
    #[test]
    fn subset_masks_cost_no_more(addrs in arb_addrs(), mask_bits in any::<u32>(), drop in any::<u32>()) {
        let full = LaneMask(mask_bits);
        let sub = LaneMask(mask_bits & !drop);
        let a = bank_conflict_cycles(&addrs, 4, full, 32, BankWidth::B8);
        let b = bank_conflict_cycles(&addrs, 4, sub, 32, BankWidth::B8);
        prop_assert!(b.cycles <= a.cycles);
    }

    /// A uniform warp access always costs one cycle on any geometry.
    #[test]
    fn uniform_access_is_always_one_cycle(addr in 0u64..65536, width in prop_oneof![Just(4u64), Just(8)]) {
        let addrs = [addr * 4; WARP_SIZE];
        for bw in [BankWidth::B4, BankWidth::B8] {
            let out = bank_conflict_cycles(&addrs, width, LaneMask::ALL, 32, bw);
            prop_assert_eq!(out.cycles, 1);
        }
    }

    /// Stats scaling is exactly linear for whole multiples.
    #[test]
    fn stats_scaling_linear(fma in 0u64..1_000_000, bytes in 0u64..1_000_000, mult in 1u64..64) {
        let s = KernelStats {
            fma_lane_ops: fma,
            gm_ld_bytes_bus: bytes,
            blocks_total: 1,
            ..Default::default()
        };
        let t = s.scaled_to_blocks(mult, 1);
        prop_assert_eq!(t.fma_lane_ops, fma * mult);
        prop_assert_eq!(t.gm_ld_bytes_bus, bytes * mult);
    }
}

/// Wider banks are not universally better: two addresses that live in
/// different 4-byte banks can collide in one 8-byte bank. (This is why the
/// paper's fix is to *match the computation width*, not to hope the wider
/// banks absorb the old pattern.)
#[test]
fn wider_banks_can_introduce_conflicts() {
    // addr 0: B4 bank 0; addr 260: B4 word 65 -> bank 1 (no conflict).
    // Under B8: words 0 and 32 -> both bank 0, different words (conflict).
    let addrs = lane_addrs_from(|l| if l == 0 { 0 } else { 260 });
    let narrow = bank_conflict_cycles(&addrs, 4, LaneMask::first(2), 32, BankWidth::B4);
    let wide = bank_conflict_cycles(&addrs, 4, LaneMask::first(2), 32, BankWidth::B8);
    assert_eq!(narrow.cycles, 1);
    assert_eq!(wide.cycles, 2);
}

/// Sampled execution of a homogeneous kernel reproduces the Full-mode
/// counters and timing exactly.
#[test]
fn sampled_equals_full_for_homogeneous_kernel() {
    let kernel = |dst: kconv::sim::GmBuf| {
        move |blk: &mut kconv::sim::BlockCtx<'_>| {
            let id = blk.dims.block_id as u64;
            blk.each_warp(|w| {
                let addrs = lane_addrs_from(|lane| dst.f32_addr(id * 32 + lane as u64));
                let vals = [[1.5f32]; WARP_SIZE];
                w.st_global::<1>(&addrs, &vals, LaneMask::ALL);
                w.count_fma(96);
            });
            blk.sync();
        }
    };
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
    let dst = gpu.alloc_f32(120 * 32).unwrap();
    let cfg = LaunchConfig::new("homog", 120, 32);
    let full = gpu.launch(&cfg, SimMode::Full, kernel(dst)).unwrap();
    let sampled = gpu.launch(&cfg, SimMode::Sampled(5), kernel(dst)).unwrap();
    assert_eq!(full.stats.fma_lane_ops, sampled.stats.fma_lane_ops);
    assert_eq!(full.stats.gm_st_bytes_bus, sampled.stats.gm_st_bytes_bus);
    assert_eq!(full.stats.barriers, sampled.stats.barriers);
    assert!((full.seconds() - sampled.seconds()).abs() < 1e-15);
}

/// The matched/unmatched bandwidth relationship (the paper's Fig. 1) holds
/// for every supported bank width and element size combination.
#[test]
fn mismatch_model_is_exhaustive() {
    for bw in [BankWidth::B4, BankWidth::B8] {
        for width in [1u64, 2, 4, 8] {
            if width > bw.bytes() {
                continue;
            }
            let n = bw.mismatch_factor(width);
            // Contiguous elements of `width` bytes across the warp.
            let addrs = lane_addrs_from(|l| l as u64 * width);
            let out = bank_conflict_cycles(&addrs, width, LaneMask::ALL, 32, bw);
            assert_eq!(out.cycles, 1, "{bw:?} width {width}");
            let useful = 32 * width;
            let capacity = 32 * bw.bytes();
            assert_eq!(capacity / useful, n, "{bw:?} width {width}");
        }
    }
}

//! Randomized invariants of the simulator substrate: the bank-conflict
//! model, coalescing, statistics scaling, and sampled-vs-full equivalence.
//!
//! These were originally `proptest` properties; they now run as seeded
//! loops over the workspace's own deterministic PRNG so the suite builds
//! offline. The case counts match the old `ProptestConfig` settings.

use kconv::sim::{
    bank_conflict_cycles, lane_addrs_from, BankWidth, Gpu, GpuSpec, KernelStats, LaneMask,
    LaunchConfig, SimMode, WARP_SIZE,
};
use kconv::tensor::rng::StdRng;

fn arb_addrs(rng: &mut StdRng) -> [u64; WARP_SIZE] {
    let mut a = [0u64; WARP_SIZE];
    for v in &mut a {
        *v = rng.gen_range(0..4096) as u64 * 4;
    }
    a
}

/// Replay count is bounded by the active lane count (a lane contributes
/// at most ceil(width/bank) words to any one bank).
#[test]
fn conflict_cycles_bounded() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..128 {
        let addrs = arb_addrs(&mut rng);
        let mask = LaneMask(rng.next_u64() as u32);
        for bw in [BankWidth::B4, BankWidth::B8] {
            let out = bank_conflict_cycles(&addrs, 4, mask, 32, bw);
            assert!(out.cycles >= 1);
            assert!(out.cycles <= (mask.count().max(1)) as u64);
        }
    }
}

/// For *contiguous* scalar accesses (the pattern every kernel here
/// uses for staging), both bank widths are conflict-free from any
/// 4-byte-aligned base.
#[test]
fn contiguous_scalar_accesses_are_conflict_free() {
    let mut rng = StdRng::seed_from_u64(0xBA5E);
    for _ in 0..128 {
        let base = rng.gen_range(0..4096) as u64;
        let addrs = lane_addrs_from(|l| base * 4 + l as u64 * 4);
        for bw in [BankWidth::B4, BankWidth::B8] {
            let out = bank_conflict_cycles(&addrs, 4, LaneMask::ALL, 32, bw);
            assert_eq!(out.cycles, 1);
        }
    }
}

/// Deactivating lanes never increases the cost.
#[test]
fn subset_masks_cost_no_more() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for _ in 0..128 {
        let addrs = arb_addrs(&mut rng);
        let mask_bits = rng.next_u64() as u32;
        let drop = rng.next_u64() as u32;
        let full = LaneMask(mask_bits);
        let sub = LaneMask(mask_bits & !drop);
        let a = bank_conflict_cycles(&addrs, 4, full, 32, BankWidth::B8);
        let b = bank_conflict_cycles(&addrs, 4, sub, 32, BankWidth::B8);
        assert!(b.cycles <= a.cycles);
    }
}

/// A uniform warp access always costs one cycle on any geometry.
#[test]
fn uniform_access_is_always_one_cycle() {
    let mut rng = StdRng::seed_from_u64(0x0A11);
    for _ in 0..128 {
        let addr = rng.gen_range(0..65536) as u64;
        let width = *rng.choose(&[4u64, 8]);
        let addrs = [addr * 4; WARP_SIZE];
        for bw in [BankWidth::B4, BankWidth::B8] {
            let out = bank_conflict_cycles(&addrs, width, LaneMask::ALL, 32, bw);
            assert_eq!(out.cycles, 1);
        }
    }
}

/// Stats scaling is exactly linear for whole multiples.
#[test]
fn stats_scaling_linear() {
    let mut rng = StdRng::seed_from_u64(0x11EA);
    for _ in 0..128 {
        let fma = rng.gen_range(0..1_000_000) as u64;
        let bytes = rng.gen_range(0..1_000_000) as u64;
        let mult = rng.gen_range(1..64) as u64;
        let s = KernelStats {
            fma_lane_ops: fma,
            gm_ld_bytes_bus: bytes,
            blocks_total: 1,
            ..Default::default()
        };
        let t = s.scaled_to_blocks(mult, 1);
        assert_eq!(t.fma_lane_ops, fma * mult);
        assert_eq!(t.gm_ld_bytes_bus, bytes * mult);
    }
}

/// Wider banks are not universally better: two addresses that live in
/// different 4-byte banks can collide in one 8-byte bank. (This is why the
/// paper's fix is to *match the computation width*, not to hope the wider
/// banks absorb the old pattern.)
#[test]
fn wider_banks_can_introduce_conflicts() {
    // addr 0: B4 bank 0; addr 260: B4 word 65 -> bank 1 (no conflict).
    // Under B8: words 0 and 32 -> both bank 0, different words (conflict).
    let addrs = lane_addrs_from(|l| if l == 0 { 0 } else { 260 });
    let narrow = bank_conflict_cycles(&addrs, 4, LaneMask::first(2), 32, BankWidth::B4);
    let wide = bank_conflict_cycles(&addrs, 4, LaneMask::first(2), 32, BankWidth::B8);
    assert_eq!(narrow.cycles, 1);
    assert_eq!(wide.cycles, 2);
}

/// Sampled execution of a homogeneous kernel reproduces the Full-mode
/// counters and timing exactly.
#[test]
fn sampled_equals_full_for_homogeneous_kernel() {
    let kernel = |dst: kconv::sim::GmBuf| {
        move |blk: &mut kconv::sim::BlockCtx<'_>| {
            let id = blk.dims.block_id as u64;
            blk.each_warp(|w| {
                let addrs = lane_addrs_from(|lane| dst.f32_addr(id * 32 + lane as u64));
                let vals = [[1.5f32]; WARP_SIZE];
                w.st_global::<1>(&addrs, &vals, LaneMask::ALL);
                w.count_fma(96);
            });
            blk.sync();
        }
    };
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
    let dst = gpu.alloc_f32(120 * 32).unwrap();
    let cfg = LaunchConfig::new("homog", 120, 32);
    let full = gpu.launch(&cfg, SimMode::Full, kernel(dst)).unwrap();
    let sampled = gpu.launch(&cfg, SimMode::Sampled(5), kernel(dst)).unwrap();
    assert_eq!(full.stats.fma_lane_ops, sampled.stats.fma_lane_ops);
    assert_eq!(full.stats.gm_st_bytes_bus, sampled.stats.gm_st_bytes_bus);
    assert_eq!(full.stats.barriers, sampled.stats.barriers);
    assert!((full.seconds() - sampled.seconds()).abs() < 1e-15);
}

/// The matched/unmatched bandwidth relationship (the paper's Fig. 1) holds
/// for every supported bank width and element size combination.
#[test]
fn mismatch_model_is_exhaustive() {
    for bw in [BankWidth::B4, BankWidth::B8] {
        for width in [1u64, 2, 4, 8] {
            if width > bw.bytes() {
                continue;
            }
            let n = bw.mismatch_factor(width);
            // Contiguous elements of `width` bytes across the warp.
            let addrs = lane_addrs_from(|l| l as u64 * width);
            let out = bank_conflict_cycles(&addrs, width, LaneMask::ALL, 32, bw);
            assert_eq!(out.cycles, 1, "{bw:?} width {width}");
            let useful = 32 * width;
            let capacity = 32 * bw.bytes();
            assert_eq!(capacity / useful, n, "{bw:?} width {width}");
        }
    }
}

/// A parallel launch is bit-identical to serial execution: same counters,
/// same modeled timing, same output bytes. Exercised over randomized
/// kernels (random grid geometry, per-block access patterns drawn from a
/// per-block PRNG, every traffic class represented).
#[test]
fn parallel_launch_equals_serial_launch() {
    let mut rng = StdRng::seed_from_u64(0xD15C0);
    for case in 0..12 {
        let blocks = rng.gen_range(1..24) + 1;
        let threads = 32 * (rng.gen_range(0..3) + 1);
        let seed = rng.next_u64();
        let smem_bytes = 4096u32;

        // Per-block behavior is a pure function of (seed, block id), so the
        // closure is `Fn + Sync` while every block still does different,
        // randomized work.
        let kernel = move |src: kconv::sim::GmBuf, dst: kconv::sim::GmBuf| {
            move |blk: &mut kconv::sim::BlockCtx<'_>| {
                let id = blk.dims.block_id as u64;
                let mut brng = StdRng::seed_from_u64(seed ^ (id * 0x9E37_79B9));
                let src_base = brng.gen_range(0..512) as u64;
                let cm_elem = brng.gen_range(0..512) as u64;
                let fmas = brng.gen_range(1..128) as u64;
                let strided_cm = brng.gen_bool(0.5);
                let threads_per = blk.dims.threads as u64;
                blk.each_warp(|w| {
                    // Shared input lines: overlapping read-only loads.
                    let a = lane_addrs_from(|l| src.f32_addr(src_base + l as u64));
                    let x = w.ld_global_ro::<1>(&a, LaneMask::ALL);
                    // Plain global loads of the same shared data.
                    let x2 = w.ld_global::<1>(&a, LaneMask::ALL);
                    // Constant reads, uniform or strided.
                    let ca = if strided_cm {
                        lane_addrs_from(|l| (cm_elem + l as u64 % 96) * 4)
                    } else {
                        kconv::sim::lane_addrs_uniform(cm_elem * 4)
                    };
                    let c = w.ld_const(&ca, LaneMask::ALL);
                    // Stage through shared memory (per-warp slices so the
                    // kernel stays clean under racecheck).
                    let warp_base = w.warp_id() as u64 * 128;
                    let sa = lane_addrs_from(|l| warp_base + l as u64 * 4);
                    let staged: [[f32; 1]; WARP_SIZE] =
                        std::array::from_fn(|l| [x[l][0] + x2[l][0] + c[l]]);
                    w.st_shared::<1>(&sa, &staged, LaneMask::ALL);
                    let y = w.ld_shared::<1>(&sa, LaneMask::ALL);
                    // Disjoint per-block output slot.
                    let d = lane_addrs_from(|l| dst.f32_addr(id * threads_per + l as u64));
                    w.st_global::<1>(&d, &y, LaneMask::ALL);
                    w.count_fma(fmas);
                });
                blk.sync();
            }
        };

        let run = |parallelism: kconv::sim::Parallelism| {
            let mut gpu = Gpu::new(GpuSpec::kepler_k40m()).with_parallelism(parallelism);
            let src = gpu.alloc_f32(1024).unwrap();
            let dst = gpu.alloc_f32((blocks * threads) as u64).unwrap();
            let data: Vec<f32> = (0..1024).map(|i| (i as f32).sin()).collect();
            gpu.upload_f32(src, &data).unwrap();
            let consts: Vec<f32> = (0..1024).map(|i| i as f32 * 0.25).collect();
            gpu.write_const_f32(0, &consts).unwrap();
            let cfg = LaunchConfig::new("prop", blocks, threads).with_smem(smem_bytes);
            let r = gpu.launch(&cfg, SimMode::Full, kernel(src, dst)).unwrap();
            (
                r,
                gpu.download_f32(dst).unwrap(),
                gpu.download_f32(src).unwrap(),
            )
        };

        let (serial, serial_dst, serial_src) = run(kconv::sim::Parallelism::Serial);
        let workers = rng.gen_range(2..6);
        let (par, par_dst, par_src) = run(kconv::sim::Parallelism::Threads(workers));
        assert_eq!(par.stats, serial.stats, "case {case}: counters diverged");
        assert_eq!(par.timing, serial.timing, "case {case}: timing diverged");
        assert_eq!(par.executed_blocks, serial.executed_blocks, "case {case}");
        assert!(
            par_dst
                .iter()
                .zip(&serial_dst)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "case {case}: output bytes diverged"
        );
        assert!(
            par_src
                .iter()
                .zip(&serial_src)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "case {case}: input buffer disturbed"
        );
    }
}

//! Facade-level tests of the resilient serving layer and the retry
//! classification it shares with the fallback chains.
//!
//! 1. End-to-end serving through `kconv::serve`: a mixed workload with a
//!    chaos plan reaches exactly one typed terminal state per request and
//!    replays bit-identically.
//! 2. Fault-record determinism: the multi-engine fallback chain records
//!    the same faults, in the same order, with bit-identical output,
//!    whether the simulator runs serially or on a thread pool.
//! 3. The retryable-vs-terminal partition of `ConvError` is exhaustive
//!    and matches the documented policy (transient device faults retry,
//!    shape/config rejections fall through, host errors abort).

use kconv::core::{ConvError, RetryClass};
use kconv::prelude::Engine;
use kconv::serve::{
    ChaosConfig, ConvRequest, DType, Outcome, ServeConfig, ServeEngine, ServeError, ServeEvent,
};
use kconv::sim::SimError;
use kconv::sim::{
    AccessKind, DeviceFault, FaultInjection, FaultKind, FaultSchedule, Gpu, GpuSpec, MemSpace,
    Parallelism, SimMode,
};
use kconv::tensor::{random_filters, random_maps, ConvProblem};

fn request(problem: ConvProblem, salt: u64) -> ConvRequest {
    let input = random_maps(problem.channels, problem.height, problem.width, 500 + salt);
    let filters = random_filters(problem.filters, problem.channels, problem.k, 600 + salt);
    ConvRequest::new(problem, input, filters)
}

/// The serving layer, driven purely through the facade: typed terminal
/// states under chaos, fault isolation, and bit-exact replays.
#[test]
fn serving_facade_end_to_end_under_chaos() {
    let special = ConvProblem::special(40, 4, 3);
    let general = ConvProblem::general(20, 2, 8, 3);
    let workload = || -> Vec<ConvRequest> {
        let mut reqs: Vec<ConvRequest> = (0..3).map(|s| request(special, s).at(0.0)).collect();
        reqs.push(request(general, 10).at(1e-4));
        reqs.push(request(special, 11).with_dtype(DType::F16).at(2e-4));
        // Malformed: problem says C=1 but the data is 2-channel.
        let mut bad = request(special, 12).at(3e-4);
        bad.input = random_maps(2, 40, 40, 777);
        reqs.push(bad);
        reqs.push(request(general, 13).at(4e-4).with_deadline(4e-4 + 1e-9));
        reqs
    };
    // Fault the first two launches: the first batch member retries, its
    // batchmates are re-enqueued and complete cleanly later.
    let chaos = ChaosConfig::new(9, FaultSchedule::new(9, 1_000_000, "").with_window(0, 2));
    let run = |chaos: Option<ChaosConfig>| {
        let mut engine = ServeEngine::new(GpuSpec::kepler_k40m(), ServeConfig::default());
        if let Some(c) = chaos {
            engine = engine.with_chaos(c);
        }
        let res = engine.run(workload());
        (res, *engine.metrics(), engine.events().to_vec())
    };

    let (res, metrics, events) = run(Some(chaos.clone()));
    assert_eq!(res.len(), 7, "one resolution per request");
    assert_eq!(
        metrics.completed + metrics.rejected + metrics.deadline_exceeded + metrics.failed,
        metrics.submitted,
        "every request reaches exactly one terminal state"
    );
    assert!(matches!(
        res[5].outcome,
        Outcome::Rejected(ServeError::Malformed(_))
    ));
    assert!(matches!(
        res[6].outcome,
        Outcome::DeadlineExceeded(ServeError::DeadlineExceeded { .. })
    ));
    assert!(metrics.retries > 0, "injected faults retried");
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ServeEvent::BatchPoisoned { .. })),
        "poisoned batch recorded"
    );
    for id in [1, 2] {
        let done = res[id].outcome.completion().expect("batchmate completes");
        assert!(done.clean(), "re-enqueued batchmates complete cleanly");
    }

    // Clean completions are bit-identical to a chaos-free run.
    let (quiet, _, _) = run(None);
    for r in &res {
        if let Some(c) = r.outcome.completion().filter(|c| c.clean()) {
            let q = quiet[r.id.0 as usize]
                .outcome
                .completion()
                .expect("clean request completes without chaos");
            assert_eq!(c.output.as_slice(), q.output.as_slice());
            assert_eq!(c.engine, q.engine);
        }
    }

    // Same seeds, same everything.
    let (res2, metrics2, events2) = run(Some(chaos));
    assert_eq!(metrics, metrics2);
    assert_eq!(events, events2);
    for (a, b) in res.iter().zip(&res2) {
        assert_eq!(a.outcome.label(), b.outcome.label());
        if let (Some(x), Some(y)) = (a.outcome.completion(), b.outcome.completion()) {
            assert_eq!(x.output.as_slice(), y.output.as_slice());
            assert_eq!(x.latency, y.latency);
        }
    }
}

/// A two-fault fallback chain — forced `Special` rejects the multi-channel
/// shape at resolution, then sabotaged implicit GEMM faults on device —
/// must record its `FaultRecord`s in deterministic engine order with a
/// bit-identical answer, serial or threaded.
#[test]
fn fault_records_are_deterministic_across_parallelism() {
    let p = ConvProblem::general(20, 2, 8, 3);
    let input = random_maps(2, 20, 20, 41);
    let filters = random_filters(8, 2, 3, 43);
    let sabotage = FaultInjection {
        kernel_substr: "implicit-gemm".into(),
        block: 0,
        op_index: 0,
        lane: 0,
        addr_xor: 1 << 44,
    };
    let run_with = |par: Parallelism| {
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m())
            .with_parallelism(par)
            .with_fault_injection(sabotage.clone());
        Engine::Special
            .run_resilient(&mut gpu, &p, &input, &filters, SimMode::Full)
            .expect("naive reference still answers")
    };

    let serial = run_with(Parallelism::Serial);
    assert_eq!(
        serial.faults.len(),
        2,
        "resolution rejection + device fault"
    );
    assert!(
        serial.faults[0].engine.contains("Special"),
        "first fault is the forced engine's resolution rejection: {}",
        serial.faults[0].engine
    );
    assert!(
        serial.faults[1].engine.contains("implicit GEMM"),
        "second fault is the sabotaged fallback: {}",
        serial.faults[1].engine
    );
    assert_eq!(serial.faults[0].error.retry_class(), RetryClass::Fallback);
    assert_eq!(serial.faults[1].error.retry_class(), RetryClass::Transient);

    let threaded = run_with(Parallelism::Threads(4));
    assert_eq!(serial.faults.len(), threaded.faults.len());
    for (a, b) in serial.faults.iter().zip(&threaded.faults) {
        assert_eq!(a.engine, b.engine, "fault order independent of threading");
        assert_eq!(a.error.to_string(), b.error.to_string());
    }
    assert_eq!(
        serial.output.as_slice(),
        threaded.output.as_slice(),
        "the absorbed-fault answer is bit-identical under threading"
    );
}

/// Every `ConvError` falls in exactly one retry class, and the partition
/// matches the documented policy. The `match` below is exhaustive without
/// a wildcard: adding an error variant without classifying it breaks this
/// test at compile time.
#[test]
fn retry_classification_partitions_every_error() {
    let device_fault = || {
        SimError::KernelFault(Box::new(DeviceFault {
            kernel: "k".into(),
            block: 0,
            warp: 0,
            lane: 0,
            kind: FaultKind::OutOfBounds {
                space: MemSpace::Global,
                access: AccessKind::Load,
                addr: 1 << 44,
                width: 4,
                limit: 1024,
            },
        }))
    };
    let cases: Vec<(ConvError, RetryClass)> = vec![
        (ConvError::Sim(device_fault()), RetryClass::Transient),
        (
            ConvError::Sim(SimError::AllocTooLarge {
                requested: 2,
                available: 1,
                space: "global",
            }),
            RetryClass::Fatal,
        ),
        (
            ConvError::Sim(SimError::InvalidLaunch("zero threads".into())),
            RetryClass::Fatal,
        ),
        (
            ConvError::Sim(SimError::HostTransferOutOfBounds {
                offset: 8,
                len: 8,
                buffer: 4,
            }),
            RetryClass::Fatal,
        ),
        (
            ConvError::Sim(SimError::Internal("bug".into())),
            RetryClass::Fatal,
        ),
        (ConvError::Config("bad tile".into()), RetryClass::Fallback),
        (ConvError::Shape("C mismatch".into()), RetryClass::Fallback),
    ];
    for (err, want) in &cases {
        assert_eq!(err.retry_class(), *want, "{err}");
        // The recoverable() predicate is derived, not independent.
        assert_eq!(
            err.retry_class().recoverable(),
            *want != RetryClass::Fatal,
            "{err}"
        );
        // Exhaustiveness guard: every constructed case must match one of
        // the three classes (the compiler enforces the enum is covered).
        match err.retry_class() {
            RetryClass::Transient | RetryClass::Fallback | RetryClass::Fatal => {}
        }
    }
    // Both sides of the partition are inhabited.
    assert!(cases.iter().any(|(_, c)| c.recoverable()));
    assert!(cases.iter().any(|(_, c)| !c.recoverable()));
}

//! Randomized fuzzing over *kernel configurations*: any configuration
//! that passes validation must produce correct output. This hunts for
//! address-arithmetic bugs in corners the presets never reach (odd tile
//! shapes, extreme register tiles, every vector width).
//!
//! Formerly `proptest` properties; now seeded loops over the workspace
//! PRNG so the suite builds offline. Invalid draws are skipped the same
//! way `prop_assume!` discarded them.

use kconv::core::{
    i8_input_scale, i8_output_scale, quantize_maps, Encoding, SpecialConvF16, SpecialConvI8,
    F16_TOL, I8_TOL,
};
use kconv::prelude::*;
use kconv::tensor::rng::StdRng;

/// Random valid special-case configurations compute the reference.
#[test]
fn special_config_fuzz() {
    let mut rng = StdRng::seed_from_u64(0x5BEC);
    let mut ran = 0;
    for _ in 0..16 {
        let width_pow = rng.gen_range(4..8); // W in {16..128}
        let height = *rng.choose(&[1usize, 2, 3, 4, 8]);
        let vec_width = *rng.choose(&[1usize, 2, 4]);
        let k = *rng.choose(&[1usize, 3, 5]);
        let f = rng.gen_range(1..4);
        let extra = rng.gen_range(0..9);
        let cfg = SpecialConfig {
            width: 1 << width_pow,
            height,
            vec_width,
        };
        let spec = GpuSpec::kepler_k40m();
        if cfg.validate(&spec, k, f).is_err() {
            continue;
        }
        let n = (1 << width_pow) + k + extra; // at least one full tile column
        let problem = ConvProblem::special(n, f, k);
        let input = random_maps(1, n, n, (width_pow * 31 + extra) as u64);
        let filters = random_filters(f, 1, k, 71);
        let mut gpu = Gpu::new(spec);
        let run = SpecialConv::new(cfg)
            .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .unwrap();
        run.verify_executed(&problem, &input, &filters, CONV_TOL)
            .unwrap_or_else(|e| panic!("{cfg:?}: {e}"));
        ran += 1;
    }
    assert!(ran >= 4, "too few valid draws: {ran}");
}

/// Random valid general-case configurations compute the reference.
#[test]
fn general_config_fuzz() {
    let mut rng = StdRng::seed_from_u64(0x6E4E);
    let mut ran = 0;
    for _ in 0..16 {
        let width = *rng.choose(&[8usize, 16, 32]);
        let height = *rng.choose(&[2usize, 4]);
        let w_t = *rng.choose(&[2usize, 4, 8]);
        let f_t = *rng.choose(&[2usize, 4]);
        let f_groups = rng.gen_range(1..3);
        let c_sh = *rng.choose(&[1usize, 2]);
        let c_mult = rng.gen_range(1..3);
        let k = *rng.choose(&[1usize, 3, 5]);
        let f_tb = f_t * 2;
        let cfg = GeneralConfig {
            width,
            height,
            f_tb,
            w_t,
            f_t,
            c_sh,
            vec_width: 2,
        };
        let spec = GpuSpec::kepler_k40m();
        if cfg.validate(&spec, k).is_err() || !width.is_multiple_of(w_t) {
            continue;
        }
        let c = c_sh * c_mult;
        let f = f_tb * f_groups;
        let n = width + k + 3; // ragged tiles on purpose
        let problem = ConvProblem::general(n, c, f, k);
        let input = random_maps(c, n, n, (width * 7 + k) as u64);
        let filters = random_filters(f, c, k, 73);
        let mut gpu = Gpu::new(spec);
        let run = GeneralConv::new(cfg)
            .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .unwrap();
        run.verify_executed(&problem, &input, &filters, CONV_TOL)
            .unwrap_or_else(|e| panic!("{cfg:?}: {e}"));
        ran += 1;
    }
    assert!(ran >= 4, "too few valid draws: {ran}");
}

/// Random narrow-storage configurations compute the quantized
/// reference, for both encodings.
#[test]
fn narrow_config_fuzz() {
    let mut rng = StdRng::seed_from_u64(0x0A44);
    for _ in 0..16 {
        let vec_width = *rng.choose(&[1usize, 2, 4]);
        let k = *rng.choose(&[1usize, 3, 5]);
        let f = rng.gen_range(1..3);
        let extra = rng.gen_range(0..7);
        let cfg = SpecialConfig {
            width: 32,
            height: 4,
            vec_width,
        };
        let n = 32 + k + extra;
        let problem = ConvProblem::special(n, f, k);
        let input = random_maps(1, n, n, 91 + extra as u64);
        let filters = random_filters(f, 1, k, 93);

        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let run = SpecialConvF16::new(cfg)
            .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .unwrap();
        let q = quantize_maps(&input, Encoding::F16);
        run.verify_executed(&problem, &q, &filters, F16_TOL)
            .unwrap_or_else(|e| panic!("f16 {cfg:?}: {e}"));

        let i8cfg = SpecialConfig {
            vec_width: vec_width * 2,
            ..cfg
        };
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let run = SpecialConvI8::new(i8cfg)
            .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .unwrap();
        let enc = Encoding::I8 {
            scale_in: i8_input_scale(&input),
            scale_out: i8_output_scale(&input, &filters),
        };
        let q = quantize_maps(&input, enc);
        run.verify_executed(&problem, &q, &filters, I8_TOL)
            .unwrap_or_else(|e| panic!("i8 {i8cfg:?}: {e}"));
    }
}

//! Property-based fuzzing over *kernel configurations*: any configuration
//! that passes validation must produce correct output. This hunts for
//! address-arithmetic bugs in corners the presets never reach (odd tile
//! shapes, extreme register tiles, every vector width).

use kconv::prelude::*;
use kconv::core::{SpecialConvF16, SpecialConvI8, F16_TOL, I8_TOL, quantize_maps, Encoding, i8_input_scale, i8_output_scale};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random valid special-case configurations compute the reference.
    #[test]
    fn special_config_fuzz(
        width_pow in 4usize..8,          // W in {16..128}
        height in prop_oneof![Just(1usize), Just(2), Just(3), Just(4), Just(8)],
        vec_width in prop_oneof![Just(1usize), Just(2), Just(4)],
        k in prop_oneof![Just(1usize), Just(3), Just(5)],
        f in 1usize..4,
        extra in 0usize..9,
    ) {
        let cfg = SpecialConfig { width: 1 << width_pow, height, vec_width };
        let spec = GpuSpec::kepler_k40m();
        prop_assume!(cfg.validate(&spec, k, f).is_ok());
        let n = (1 << width_pow) + k + extra; // at least one full tile column
        let problem = ConvProblem::special(n, f, k);
        let input = random_maps(1, n, n, (width_pow * 31 + extra) as u64);
        let filters = random_filters(f, 1, k, 71);
        let mut gpu = Gpu::new(spec);
        let run = SpecialConv::new(cfg)
            .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .unwrap();
        run.verify_executed(&problem, &input, &filters, CONV_TOL)
            .map_err(|e| TestCaseError::fail(format!("{cfg:?}: {e}")))?;
    }

    /// Random valid general-case configurations compute the reference.
    #[test]
    fn general_config_fuzz(
        width in prop_oneof![Just(8usize), Just(16), Just(32)],
        height in prop_oneof![Just(2usize), Just(4)],
        w_t in prop_oneof![Just(2usize), Just(4), Just(8)],
        f_t in prop_oneof![Just(2usize), Just(4)],
        f_groups in 1usize..3,
        c_sh in prop_oneof![Just(1usize), Just(2)],
        c_mult in 1usize..3,
        k in prop_oneof![Just(1usize), Just(3), Just(5)],
    ) {
        let f_tb = f_t * 2;
        let cfg = GeneralConfig { width, height, f_tb, w_t, f_t, c_sh, vec_width: 2 };
        let spec = GpuSpec::kepler_k40m();
        prop_assume!(cfg.validate(&spec, k).is_ok());
        prop_assume!(width % w_t == 0);
        let c = c_sh * c_mult;
        let f = f_tb * f_groups;
        let n = width + k + 3; // ragged tiles on purpose
        let problem = ConvProblem::general(n, c, f, k);
        let input = random_maps(c, n, n, (width * 7 + k) as u64);
        let filters = random_filters(f, c, k, 73);
        let mut gpu = Gpu::new(spec);
        let run = GeneralConv::new(cfg)
            .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .unwrap();
        run.verify_executed(&problem, &input, &filters, CONV_TOL)
            .map_err(|e| TestCaseError::fail(format!("{cfg:?}: {e}")))?;
    }

    /// Random narrow-storage configurations compute the quantized
    /// reference, for both encodings.
    #[test]
    fn narrow_config_fuzz(
        vec_width in prop_oneof![Just(1usize), Just(2), Just(4)],
        k in prop_oneof![Just(1usize), Just(3), Just(5)],
        f in 1usize..3,
        extra in 0usize..7,
    ) {
        let cfg = SpecialConfig { width: 32, height: 4, vec_width };
        let n = 32 + k + extra;
        let problem = ConvProblem::special(n, f, k);
        let input = random_maps(1, n, n, 91 + extra as u64);
        let filters = random_filters(f, 1, k, 93);

        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let run = SpecialConvF16::new(cfg)
            .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .unwrap();
        let q = quantize_maps(&input, Encoding::F16);
        run.verify_executed(&problem, &q, &filters, F16_TOL)
            .map_err(|e| TestCaseError::fail(format!("f16 {cfg:?}: {e}")))?;

        let i8cfg = SpecialConfig { vec_width: vec_width * 2, ..cfg };
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let run = SpecialConvI8::new(i8cfg)
            .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .unwrap();
        let enc = Encoding::I8 {
            scale_in: i8_input_scale(&input),
            scale_out: i8_output_scale(&input, &filters),
        };
        let q = quantize_maps(&input, enc);
        run.verify_executed(&problem, &q, &filters, I8_TOL)
            .map_err(|e| TestCaseError::fail(format!("i8 {i8cfg:?}: {e}")))?;
    }
}

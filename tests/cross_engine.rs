//! Cross-crate integration: every convolution engine computes the same
//! function, across problem shapes, including randomized shape generation
//! (seeded loops over the workspace PRNG; the suite builds offline).

use kconv::prelude::*;
use kconv::tensor::rng::StdRng;

fn engines() -> Vec<Box<dyn Convolution>> {
    vec![
        Box::new(ImplicitGemmConv::default()),
        Box::new(ExplicitGemmConv::default()),
    ]
}

/// Runs every engine able to handle `problem` and checks all outputs agree
/// with the CPU reference.
fn check_all_engines(problem: ConvProblem, seed: u64) {
    let input = random_maps(problem.channels, problem.height, problem.width, seed);
    let filters = random_filters(problem.filters, problem.channels, problem.k, seed + 1);
    let reference = conv_reference(&problem, &input, &filters);

    let mut ran = 0;
    let mut candidates = engines();
    if problem.channels == 1 {
        candidates.push(Box::new(SpecialConv::new(SpecialConfig {
            width: 32,
            height: 4,
            vec_width: 2,
        })));
        candidates.push(Box::new(SpecialConv::new(SpecialConfig {
            width: 32,
            height: 4,
            vec_width: 1,
        })));
    }
    if let Some(cfg) = GeneralConfig::for_problem(
        &GpuSpec::kepler_k40m(),
        problem.k,
        problem.channels,
        problem.filters,
    ) {
        candidates.push(Box::new(GeneralConv::new(cfg)));
    }
    for engine in candidates {
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let run = engine
            .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .unwrap_or_else(|e| panic!("{} on {problem}: {e}", engine.name()));
        kconv::tensor::assert_close(
            run.output.as_slice(),
            reference.as_slice(),
            CONV_TOL,
            &format!("{} on {problem}", engine.name()),
        );
        ran += 1;
    }
    assert!(ran >= 2, "at least the two baselines must run {problem}");
}

#[test]
fn all_engines_agree_on_canonical_shapes() {
    for (c, n, f, k) in [
        (1usize, 40usize, 4usize, 3usize),
        (1, 40, 1, 1),
        (1, 40, 2, 5),
        (2, 20, 8, 3),
        (4, 24, 16, 5),
        (3, 20, 8, 3), // odd channel count
        (8, 16, 8, 7),
    ] {
        check_all_engines(ConvProblem::general(n, c, f, k), 1000 + k as u64);
    }
}

/// Engines agree on arbitrary small shapes.
#[test]
fn engines_agree_on_random_shapes() {
    let mut rng = StdRng::seed_from_u64(0xE46A);
    for _ in 0..12 {
        let c = rng.gen_range(1..5);
        let extra = rng.gen_range(0..12);
        let f = rng.gen_range(1..10);
        let k = *rng.choose(&[1usize, 2, 3, 5]);
        let n = k + 8 + extra;
        check_all_engines(ConvProblem::general(n, c, f, k), 7 + extra as u64);
    }
}

/// The special kernel agrees with the reference over random single-
/// channel shapes and both vector widths.
#[test]
fn special_kernel_random_shapes() {
    let mut rng = StdRng::seed_from_u64(0x5BEC1A);
    for _ in 0..12 {
        let extra = rng.gen_range(0..20);
        let f = rng.gen_range(1..6);
        let k = *rng.choose(&[1usize, 3, 5, 7]);
        let vw = *rng.choose(&[1usize, 2, 4]);
        let n = k + 10 + extra;
        let problem = ConvProblem::special(n, f, k);
        let input = random_maps(1, n, n, extra as u64);
        let filters = random_filters(f, 1, k, extra as u64 + 9);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let conv = SpecialConv::new(SpecialConfig {
            width: 32,
            height: 4,
            vec_width: vw,
        });
        let run = conv
            .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .unwrap();
        let want = conv_reference(&problem, &input, &filters);
        kconv::tensor::assert_close(
            run.output.as_slice(),
            want.as_slice(),
            CONV_TOL,
            "special random shapes",
        );
    }
}

//! Integration checks of the paper's qualitative claims, end to end across
//! the workspace. These are the claims `EXPERIMENTS.md` quantifies; here
//! they gate the build.

use kconv::core::model;
use kconv::prelude::*;
use kconv_sim::SimMode as Mode;

fn gflops(conv: &dyn Convolution, problem: &ConvProblem, seed: u64) -> f64 {
    let input = random_maps(problem.channels, problem.height, problem.width, seed);
    let filters = random_filters(problem.filters, problem.channels, problem.k, seed + 1);
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
    conv.run(&mut gpu, problem, &input, &filters, Mode::Sampled(2))
        .unwrap_or_else(|e| panic!("{}: {e}", conv.name()))
        .effective_gflops(problem)
}

/// Paper section 5.1: the special-case kernel beats the GEMM baseline.
#[test]
fn special_kernel_beats_gemm_baseline() {
    for k in [1usize, 3, 5] {
        let problem = ConvProblem::special(512, 32, k);
        let ours = gflops(&SpecialConv::default(), &problem, 10);
        let baseline = gflops(&ImplicitGemmConv::default(), &problem, 10);
        assert!(
            ours > 1.5 * baseline,
            "K={k}: ours {ours:.0} vs baseline {baseline:.0}"
        );
    }
}

/// Paper Fig. 7: the gain is largest (>10x against the era baseline) for
/// F = 1, where the baseline degenerates to a 1-row GEMM.
#[test]
fn f_equals_one_is_the_extreme_case() {
    let problem = ConvProblem::special(1024, 1, 3);
    let ours = gflops(&SpecialConv::default(), &problem, 11);
    let era = gflops(&ImplicitGemmConv::era2016(&problem), &problem, 11);
    assert!(ours > 8.0 * era, "ours {ours:.0} vs era baseline {era:.0}");
}

/// Paper Fig. 7b: the unmatched kernel is slower; section 5.1 predicts the
/// general case degrades at least as much.
#[test]
fn unmatched_width_costs_performance() {
    let problem = ConvProblem::special(1024, 8, 3);
    let matched = gflops(&SpecialConv::default(), &problem, 12);
    let unmatched = gflops(
        &SpecialConv::new(SpecialConfig::kepler_unmatched()),
        &problem,
        12,
    );
    assert!(matched > unmatched);

    let problem = ConvProblem::general(66, 64, 64, 3);
    let g_matched = gflops(&GeneralConv::table1(3), &problem, 13);
    let unmatched_cfg = GeneralConfig {
        vec_width: 1,
        ..GeneralConfig::table1(3)
    };
    let g_unmatched = gflops(&GeneralConv::new(unmatched_cfg), &problem, 13);
    assert!(g_matched > g_unmatched);
    let special_loss = 1.0 - unmatched / matched;
    let general_loss = 1.0 - g_unmatched / g_matched;
    assert!(
        general_loss > 0.5 * special_loss,
        "general loss {general_loss:.3} should be comparable or larger than special {special_loss:.3}"
    );
}

/// Paper section 5.2: the general kernel beats the GEMM baseline on
/// CNN-sized problems (both baseline variants).
#[test]
fn general_kernel_beats_gemm_baseline() {
    for k in [3usize, 5, 7] {
        let problem = ConvProblem::general(64 + k - 1, 64, 64, k);
        let ours = gflops(&GeneralConv::table1(k), &problem, 14);
        let tex = gflops(&ImplicitGemmConv::default(), &problem, 14);
        let era = gflops(&ImplicitGemmConv::era2016(&problem), &problem, 14);
        assert!(ours > tex, "K={k}: ours {ours:.0} vs texture {tex:.0}");
        assert!(ours > era, "K={k}: ours {ours:.0} vs era {era:.0}");
    }
}

/// Paper Fig. 2: the Fermi-tuned GEMM loses on Kepler; matching the width
/// recovers a large share.
#[test]
fn fig2_ordering_holds() {
    use kconv::gemm::{launch_gemm, GemmConfig, GemmShape};
    let shape = GemmShape::square(1024);
    let run = |cfg: &GemmConfig| {
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let elems = (1024 * 1024) as u64;
        let a = gpu.alloc_f32(elems).unwrap();
        let b = gpu.alloc_f32(elems).unwrap();
        let c = gpu.alloc_f32(elems).unwrap();
        gpu.fill_f32(a, 0.5).unwrap();
        gpu.fill_f32(b, 0.25).unwrap();
        launch_gemm(&mut gpu, cfg, shape, a, b, c, Mode::Sampled(2))
            .unwrap()
            .seconds()
    };
    let cublas = run(&GemmConfig::kepler_tuned());
    let magma = run(&GemmConfig::fermi_tuned());
    let magma_mod = run(&GemmConfig::fermi_tuned_matched());
    assert!(magma > 1.3 * cublas, "MAGMA {magma} vs cuBLAS {cublas}");
    assert!(magma_mod < 0.85 * magma, "mod {magma_mod} vs MAGMA {magma}");
}

/// Paper section 3.2: the special kernel's load traffic is the per-tile
/// optimum — the analytic model equals the counted bytes.
#[test]
fn traffic_model_matches_counters_end_to_end() {
    let cfg = SpecialConfig {
        width: 32,
        height: 4,
        vec_width: 2,
    };
    let problem = ConvProblem::special(70, 4, 5);
    let input = random_maps(1, 70, 70, 15);
    let filters = random_filters(4, 1, 5, 16);
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
    let run = SpecialConv::new(cfg)
        .run(&mut gpu, &problem, &input, &filters, Mode::Full)
        .unwrap();
    assert_eq!(
        run.report.stats.gm_ld_bytes_useful,
        model::special_gm_load_bytes(&problem, &cfg)
    );
    assert_eq!(
        run.report.stats.gm_st_bytes_useful,
        model::special_gm_store_bytes(&problem, &cfg)
    );
}

/// Paper section 4.2: the general kernel's global traffic sits well below
/// a GEMM-style kernel's (the ~1/K claim), measured, not just modeled.
#[test]
fn general_gm_traffic_beats_gemm_measured() {
    let problem = ConvProblem::general(66, 32, 64, 3);
    let input = random_maps(32, 66, 66, 17);
    let filters = random_filters(64, 32, 3, 18);

    let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
    let ours = GeneralConv::table1(3)
        .run(&mut gpu, &problem, &input, &filters, Mode::Full)
        .unwrap();
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
    let gemm = ImplicitGemmConv::era2016(&problem)
        .run(&mut gpu, &problem, &input, &filters, Mode::Full)
        .unwrap();
    let ratio =
        ours.report.stats.gm_ld_bytes_useful as f64 / gemm.report.stats.gm_ld_bytes_useful as f64;
    assert!(ratio < 0.75, "load-traffic ratio {ratio} (expected ~1/K)");
}

/// The CNN stack picks the paper's kernels automatically and beats forcing
/// the baseline.
#[test]
fn cnn_stack_engine_selection_pays_off() {
    let stack = LayerStack::vgg_like();
    let input = random_maps(3, 34, 34, 19);
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
    let auto = stack
        .run(&mut gpu, input.clone(), Engine::Auto, Mode::Sampled(2))
        .unwrap();
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
    let forced = stack
        .run(&mut gpu, input, Engine::ImplicitGemm, Mode::Sampled(2))
        .unwrap();
    assert!(auto.total_seconds() < forced.total_seconds());
}

//! Trace-subsystem integration: attaching a [`TraceSink`] must be a pure
//! observer. Traced and untraced launches of a real kernel produce
//! bit-identical `KernelStats` and outputs, under both serial and threaded
//! execution — and the trace itself is identical however it was captured.

use kconv::core::{Convolution, GeneralConv, SpecialConv};
use kconv::sim::{Gpu, GpuSpec, KernelStats, Parallelism, SimMode};
use kconv::tensor::{random_filters, random_maps, ConvProblem, FeatureMaps, FilterSet};
use kconv::trace::{SharedBuffer, TraceSummary, TraceWriter};

/// Runs `conv`, optionally traced; returns stats, flat output and the
/// trace bytes (empty when untraced).
fn run(
    conv: &dyn Convolution,
    problem: &ConvProblem,
    input: &FeatureMaps,
    filters: &FilterSet,
    parallelism: Parallelism,
    traced: bool,
) -> (KernelStats, Vec<f32>, Vec<u8>) {
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m()).with_parallelism(parallelism);
    let buf = SharedBuffer::new();
    if traced {
        gpu.set_trace_sink(Some(Box::new(TraceWriter::new(buf.clone()))));
    }
    let run = conv
        .run(&mut gpu, problem, input, filters, SimMode::Full)
        .expect("launch");
    gpu.set_trace_sink(None);
    (run.report.stats, run.output.as_slice().to_vec(), buf.take())
}

fn check_observer_effect(conv: &dyn Convolution, problem: ConvProblem, seed: u64) {
    let input = random_maps(problem.channels, problem.height, problem.width, seed);
    let filters = random_filters(problem.filters, problem.channels, problem.k, seed + 1);

    let (base_stats, base_out, _) =
        run(conv, &problem, &input, &filters, Parallelism::Serial, false);
    let mut traces = Vec::new();
    for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
        for traced in [false, true] {
            let (stats, out, bytes) = run(conv, &problem, &input, &filters, parallelism, traced);
            assert_eq!(
                stats,
                base_stats,
                "{}: stats drifted ({parallelism:?}, traced={traced})",
                conv.name()
            );
            assert_eq!(
                out,
                base_out,
                "{}: output drifted ({parallelism:?}, traced={traced})",
                conv.name()
            );
            if traced {
                traces.push(bytes);
            } else {
                assert!(bytes.is_empty());
            }
        }
    }
    // The serial and threaded captures are the same byte stream.
    assert_eq!(traces[0], traces[1], "{}: trace differs", conv.name());

    // And the trace's roll-up agrees with the launch counters.
    let s = &TraceSummary::from_bytes(&traces[0]).expect("readable trace")[0];
    assert_eq!(s.gm_ld_useful_bytes(), base_stats.gm_ld_bytes_useful);
    assert_eq!(s.gm_st_useful_bytes(), base_stats.gm_st_bytes_useful);
    assert_eq!(
        s.gm_transactions(),
        base_stats.gm_ld_transactions + base_stats.gm_st_transactions
    );
    assert_eq!(
        s.sm_cycles(),
        base_stats.sm_ld_cycles + base_stats.sm_st_cycles
    );
    assert_eq!(s.fma_lane_ops, base_stats.fma_lane_ops);
    assert!(!s.aborted);
}

#[test]
fn tracing_is_a_pure_observer_on_the_general_kernel() {
    check_observer_effect(
        &GeneralConv::table1(3),
        ConvProblem::general(34, 4, 64, 3),
        41,
    );
}

#[test]
fn tracing_is_a_pure_observer_on_the_special_kernel() {
    check_observer_effect(&SpecialConv::default(), ConvProblem::special(130, 8, 3), 43);
}

//! End-to-end tests of the device-side sanitizer and fault-containment
//! layer: kernel bugs surface as typed [`SimError::KernelFault`] values
//! naming the exact kernel/block/warp/thread — never as process panics —
//! and the application layer degrades gracefully to a reference engine.

use kconv::core::Convolution;
use kconv::prelude::*;
use kconv::sim::{
    lane_addrs, lane_addrs_from, BlockCtx, FaultInjection, FaultKind, GmBuf, LaneMask,
    LaunchConfig, SanitizerMode, SimError,
};
use kconv::tensor::rng::StdRng;

fn gpu() -> Gpu {
    Gpu::new(GpuSpec::kepler_k40m())
}

fn expect_fault(r: Result<kconv::sim::LaunchReport, SimError>) -> kconv::sim::DeviceFault {
    match r {
        Err(e) => e
            .device_fault()
            .unwrap_or_else(|| panic!("expected a device fault, got {e}"))
            .clone(),
        Ok(_) => panic!("kernel completed but a fault was expected"),
    }
}

/// A kernel whose block 2 reads one element past the end of `buf`.
fn oob_kernel(buf: GmBuf, len: u64) -> impl Fn(&mut BlockCtx<'_>) + Sync {
    move |blk: &mut BlockCtx<'_>| {
        let oob = blk.dims.block_id == 2;
        blk.each_warp(|w| {
            let base = if oob { len - 16 } else { 0 };
            let a = lane_addrs_from(|l| buf.f32_addr(base + l as u64));
            let x = w.ld_global::<1>(&a, LaneMask::ALL);
            w.st_global::<1>(
                &lane_addrs_from(|l| buf.f32_addr(l as u64)),
                &x,
                LaneMask::ALL,
            );
        });
    }
}

#[test]
fn oob_access_is_a_typed_error_not_a_panic() {
    let mut g = gpu();
    let buf = g.alloc_f32(1024).unwrap();
    g.fill_f32(buf, 1.0).unwrap();
    let cfg = LaunchConfig::new("oob integration", 4, 32);
    let fault = expect_fault(g.launch(&cfg, SimMode::Full, oob_kernel(buf, 1024)));
    assert_eq!(fault.kernel, "oob integration");
    assert_eq!(fault.block, 2);
    assert_eq!(fault.warp, 0);
    assert_eq!(fault.lane, 16); // lanes 16.. start at element 1024+
    assert!(matches!(fault.kind, FaultKind::OutOfBounds { .. }));

    // The device survives the fault: a clean launch still works.
    let cfg = LaunchConfig::new("clean", 2, 32);
    g.launch(&cfg, SimMode::Full, move |blk: &mut BlockCtx<'_>| {
        blk.each_warp(|w| {
            let a = lane_addrs_from(|l| buf.f32_addr(l as u64));
            w.ld_global::<1>(&a, LaneMask::ALL);
        });
    })
    .unwrap();
}

#[test]
fn faults_are_deterministic_across_serial_and_parallel() {
    let run = |p: Parallelism| {
        let mut g = gpu().with_parallelism(p);
        let buf = g.alloc_f32(1024).unwrap();
        g.fill_f32(buf, 1.0).unwrap();
        let cfg = LaunchConfig::new("det", 16, 64);
        expect_fault(g.launch(&cfg, SimMode::Full, oob_kernel(buf, 1024)))
    };
    assert_eq!(run(Parallelism::Serial), run(Parallelism::Threads(4)));
}

#[test]
fn racecheck_catches_cross_warp_hazard() {
    // Both warps store to the same shared-memory words with no barrier in
    // between: a classic write-write race.
    let racy = |blk: &mut BlockCtx<'_>| {
        blk.each_warp(|w| {
            let sa = lane_addrs(0, 4);
            let v = [[1.0f32]; 32];
            w.st_shared::<1>(&sa, &v, LaneMask::ALL);
        });
    };
    let cfg = LaunchConfig::new("racy", 1, 64).with_smem(256);

    // Silent without the sanitizer (the warp-serial simulator executes it
    // deterministically)... Off is forced so the test holds under a
    // KCONV_SANITIZE environment too.
    gpu()
        .with_sanitizer(SanitizerMode::Off)
        .launch(&cfg, SimMode::Full, racy)
        .unwrap();

    // ...flagged under racecheck.
    let mut g = gpu().with_sanitizer(SanitizerMode::Racecheck);
    let fault = expect_fault(g.launch(&cfg, SimMode::Full, racy));
    assert!(matches!(fault.kind, FaultKind::RaceHazard { .. }));
    assert_eq!(fault.block, 0);
}

#[test]
fn synccheck_catches_divergent_barrier_counts() {
    let divergent = |blk: &mut BlockCtx<'_>| {
        blk.each_warp(|w| {
            if w.warp_id() == 0 {
                w.bar_sync();
            }
        });
        blk.sync();
    };
    let cfg = LaunchConfig::new("divergent", 1, 64);
    gpu()
        .with_sanitizer(SanitizerMode::Off)
        .launch(&cfg, SimMode::Full, divergent)
        .unwrap();

    let mut g = gpu().with_sanitizer(SanitizerMode::Synccheck);
    let fault = expect_fault(g.launch(&cfg, SimMode::Full, divergent));
    assert!(matches!(
        fault.kind,
        FaultKind::BarrierDivergence {
            count_min: 0,
            count_max: 1,
            ..
        }
    ));
}

#[test]
fn memcheck_catches_uninitialized_reads() {
    let read = |buf: GmBuf| {
        move |blk: &mut BlockCtx<'_>| {
            blk.each_warp(|w| {
                let a = lane_addrs_from(|l| buf.f32_addr(l as u64));
                w.ld_global::<1>(&a, LaneMask::ALL);
            });
        }
    };
    let cfg = LaunchConfig::new("uninit", 1, 32);

    // Reading never-written memory is silent with the sanitizer off...
    let mut g = gpu().with_sanitizer(SanitizerMode::Off);
    let buf = g.alloc_f32(64).unwrap();
    g.launch(&cfg, SimMode::Full, read(buf)).unwrap();

    // ...and a typed fault under memcheck.
    let mut g = gpu().with_sanitizer(SanitizerMode::Memcheck);
    let buf = g.alloc_f32(64).unwrap();
    let fault = expect_fault(g.launch(&cfg, SimMode::Full, read(buf)));
    assert!(matches!(fault.kind, FaultKind::UninitializedRead { .. }));
}

#[test]
fn watchdog_stops_runaway_kernels() {
    let mut g = gpu().with_step_budget(10_000);
    let cfg = LaunchConfig::new("runaway", 1, 32);
    let fault = expect_fault(g.launch(&cfg, SimMode::Full, |blk: &mut BlockCtx<'_>| {
        for _ in 0..1_000_000 {
            blk.each_warp(|w| w.count_fma(1));
        }
    }));
    assert!(matches!(fault.kind, FaultKind::Timeout { .. }));
}

/// Seeded fault injection across the paper's kernels: flip one bit in one
/// lane's address of one block and the containment layer must name exactly
/// that block (and the flipped access must be the detected one).
#[test]
fn injection_is_pinpointed_in_real_kernels() {
    let mut rng = StdRng::seed_from_u64(0x5A17);

    // Special-case kernel.
    let p = ConvProblem::special(128, 8, 3);
    let input = random_maps(1, 128, 128, 5);
    let filters = random_filters(8, 1, 3, 7);
    let clean = SpecialConv::default()
        .run(&mut gpu(), &p, &input, &filters, SimMode::Full)
        .unwrap();
    let blocks = clean.report.executed_blocks.len();
    let block = rng.gen_range(0..blocks);
    let mut g = gpu().with_fault_injection(FaultInjection {
        kernel_substr: "special".into(),
        block,
        op_index: 0,
        lane: 0,
        addr_xor: 1 << 44,
    });
    let err = SpecialConv::default()
        .run(&mut g, &p, &input, &filters, SimMode::Full)
        .unwrap_err();
    let fault = match &err {
        kconv::core::ConvError::Sim(e) => e.device_fault().expect("device fault"),
        other => panic!("expected a sim error, got {other}"),
    };
    assert!(fault.kernel.contains("special"), "{}", fault.kernel);
    assert_eq!(fault.block, block);
    assert!(matches!(fault.kind, FaultKind::OutOfBounds { .. }));

    // General-case kernel.
    let p = ConvProblem::general(34, 2, 64, 3);
    let input = random_maps(2, 34, 34, 9);
    let filters = random_filters(64, 2, 3, 11);
    let cfg = GeneralConfig::for_problem(&GpuSpec::kepler_k40m(), 3, 2, 64).unwrap();
    let clean = GeneralConv::new(cfg)
        .run(&mut gpu(), &p, &input, &filters, SimMode::Full)
        .unwrap();
    let block = rng.gen_range(0..clean.report.executed_blocks.len());
    let mut g = gpu().with_fault_injection(FaultInjection {
        kernel_substr: "general".into(),
        block,
        op_index: 0,
        lane: 0,
        addr_xor: 1 << 44,
    });
    let err = GeneralConv::new(cfg)
        .run(&mut g, &p, &input, &filters, SimMode::Full)
        .unwrap_err();
    let fault = match &err {
        kconv::core::ConvError::Sim(e) => e.device_fault().expect("device fault"),
        other => panic!("expected a sim error, got {other}"),
    };
    assert!(fault.kernel.contains("general"), "{}", fault.kernel);
    assert_eq!(fault.block, block);

    // Blocked-GEMM kernel.
    let shape = GemmShape::square(256);
    let cfg = GemmConfig::kepler_tuned();
    let setup = |g: &mut Gpu| {
        let elems = (256 * 256) as u64;
        let a = g.alloc_f32(elems).unwrap();
        let b = g.alloc_f32(elems).unwrap();
        let c = g.alloc_f32(elems).unwrap();
        g.fill_f32(a, 0.5).unwrap();
        g.fill_f32(b, 0.25).unwrap();
        (a, b, c)
    };
    let mut g = gpu();
    let (a, b, c) = setup(&mut g);
    let report = launch_gemm(&mut g, &cfg, shape, a, b, c, SimMode::Full).unwrap();
    let block = rng.gen_range(0..report.executed_blocks.len());
    let mut g = gpu().with_fault_injection(FaultInjection {
        kernel_substr: "Kepler-tuned".into(),
        block,
        op_index: 0,
        lane: 0,
        addr_xor: 1 << 44,
    });
    let (a, b, c) = setup(&mut g);
    let err = launch_gemm(&mut g, &cfg, shape, a, b, c, SimMode::Full).unwrap_err();
    let fault = err.device_fault().expect("device fault");
    assert!(fault.kernel.contains("Kepler-tuned"), "{}", fault.kernel);
    assert_eq!(fault.block, block);
}

/// The application layer degrades gracefully: a faulting primary kernel
/// falls back (ultimately to the naive reference), the answer is still
/// correct, and the fault record names the culprit.
#[test]
fn engine_falls_back_when_the_primary_kernel_faults() {
    let p = ConvProblem::special(64, 4, 3);
    let input = random_maps(1, 64, 64, 21);
    let filters = random_filters(4, 1, 3, 23);
    // Sabotage only the special kernel; the fallback engines are clean.
    let mut g = gpu().with_fault_injection(FaultInjection {
        kernel_substr: "special".into(),
        block: 0,
        op_index: 0,
        lane: 0,
        addr_xor: 1 << 44,
    });
    let run = Engine::Auto
        .run_resilient(&mut g, &p, &input, &filters, SimMode::Full)
        .unwrap();
    assert_eq!(run.faults.len(), 1);
    assert!(
        run.faults[0].engine.contains("special"),
        "{}",
        run.faults[0].engine
    );
    let fault = match &run.faults[0].error {
        kconv::core::ConvError::Sim(e) => e.device_fault().expect("device fault"),
        other => panic!("expected a sim error, got {other}"),
    };
    assert_eq!(fault.block, 0);
    run.verify_executed(&p, &input, &filters, CONV_TOL).unwrap();
}

/// The paper kernels themselves are sanitizer-clean: the full tool suite
/// finds nothing to report on a representative problem per engine.
#[test]
fn paper_kernels_are_sanitizer_clean() {
    let p = ConvProblem::special(64, 4, 3);
    let input = random_maps(1, 64, 64, 31);
    let filters = random_filters(4, 1, 3, 33);
    let mut g = gpu().with_sanitizer(SanitizerMode::Full);
    SpecialConv::default()
        .run(&mut g, &p, &input, &filters, SimMode::Full)
        .unwrap();

    let p = ConvProblem::general(20, 2, 8, 3);
    let input = random_maps(2, 20, 20, 35);
    let filters = random_filters(8, 2, 3, 37);
    for engine in [Engine::General, Engine::ImplicitGemm, Engine::ExplicitGemm] {
        let mut g = gpu().with_sanitizer(SanitizerMode::Full);
        engine
            .run(&mut g, &p, &input, &filters, SimMode::Full)
            .unwrap_or_else(|e| panic!("{engine:?} under sanitizer: {e}"));
    }
}

//! Replay-farm integration through the public facade: the decoded
//! [`Trace`] form, the byte-stream replayer and the live simulator must
//! agree bit for bit, and the farm sweep must be deterministic no matter
//! how its cells are scheduled.

use kconv::core::{Convolution, GeneralConv, SpecialConv};
use kconv::replay::{replay, replay_decoded, sweep, sweep_cells, TargetSpec};
use kconv::sim::{
    BankWidth, Gpu, GpuSpec, KernelStats, LaneMask, OverlapMode, Parallelism, SimMode, TraceEvent,
    TraceLaunch, TraceOp, TraceSink, WARP_SIZE,
};
use kconv::tensor::{random_filters, random_maps, ConvProblem};
use kconv::trace::{read_launches, SharedBuffer, Trace, TraceWriter};

/// splitmix64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Captures a real kernel launch as KTRC bytes plus its live stats.
fn capture(conv: &dyn Convolution, problem: ConvProblem, seed: u64) -> (Vec<u8>, KernelStats) {
    let input = random_maps(problem.channels, problem.height, problem.width, seed);
    let filters = random_filters(problem.filters, problem.channels, problem.k, seed + 1);
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
    let buf = SharedBuffer::new();
    gpu.set_trace_sink(Some(Box::new(TraceWriter::new(buf.clone()))));
    let run = conv
        .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
        .expect("corpus kernel runs");
    gpu.set_trace_sink(None);
    (buf.take(), run.report.stats)
}

/// A synthetic multi-launch trace of seeded random events — the
/// adversarial input the real kernels never produce (partial masks,
/// zero-event blocks, every op kind).
fn random_stream(seed: u64) -> Vec<u8> {
    let mut rng = Rng(0xFA12_0000 + seed);
    let spec = GpuSpec::kepler_k40m();
    let buf = SharedBuffer::new();
    let mut w = TraceWriter::new(buf.clone());
    for li in 0..1 + (seed % 3) {
        let name = format!("rand-{seed}-{li}");
        let blocks = 1 + (rng.next() % 4);
        w.launch_begin(&TraceLaunch {
            kernel: &name,
            grid_blocks: blocks as usize,
            executed_blocks: blocks as usize,
            threads_per_block: 64,
            smem_bytes: (rng.next() % 48_000) as u32,
            regs_per_thread: 16 + (rng.next() % 200) as u32,
            overlap: OverlapMode::from_u8((rng.next() % 3) as u8).unwrap(),
            spec: &spec,
        });
        for block_id in 0..blocks {
            let events: Vec<TraceEvent> = (0..rng.next() % 16)
                .map(|_| {
                    let bits = match rng.next() % 3 {
                        0 => 1u64 << (rng.next() % 32),
                        1 => u32::MAX as u64,
                        _ => rng.next(),
                    };
                    let mask = LaneMask::from_fn(|lane| bits & (1 << lane) != 0);
                    let mut addrs = [0u64; WARP_SIZE];
                    for (lane, slot) in addrs.iter_mut().enumerate() {
                        if mask.is_active(lane) {
                            *slot = rng.next() % (1 << 40);
                        }
                    }
                    TraceEvent {
                        op: TraceOp::ALL[(rng.next() % 6) as usize],
                        warp: rng.next() as u32,
                        mask,
                        lane_bytes: 1 << (rng.next() % 4),
                        transactions: rng.next() as u32,
                        cycles: rng.next() as u32,
                        addrs,
                    }
                })
                .collect();
            w.block_events(block_id as usize, &events);
        }
        let stats = KernelStats {
            fma_lane_ops: rng.next() % (1 << 40),
            alu_lane_ops: rng.next() % (1 << 40),
            barriers: rng.next() % (1 << 20),
            ..KernelStats::default()
        };
        w.launch_end(&stats);
    }
    buf.take()
}

#[test]
fn decoded_trace_round_trips_the_streamed_reader_on_random_corpora() {
    for seed in 0..8 {
        let bytes = random_stream(seed);
        let decoded = Trace::decode(&bytes).expect("decodes");
        let streamed = read_launches(&bytes).expect("streams");
        assert_eq!(decoded.launches().len(), streamed.len(), "seed {seed}");
        for (d, s) in decoded.launches().iter().zip(&streamed) {
            assert_eq!(d.header, s.header, "seed {seed}");
            assert_eq!(d.end, s.end, "seed {seed}");
            assert_eq!(d.block_count(), s.blocks.len(), "seed {seed}");
            for (view, (block_id, events)) in d.blocks().zip(&s.blocks) {
                assert_eq!(view.block_id, *block_id, "seed {seed}");
                assert_eq!(&view.to_events(), events, "seed {seed}");
            }
        }
    }
}

#[test]
fn decoded_and_byte_replay_agree_on_random_corpora_under_every_preset() {
    for seed in 0..6 {
        let bytes = random_stream(seed);
        let trace = Trace::decode(&bytes).expect("decodes");
        for spec in GpuSpec::presets_all() {
            let target = TargetSpec::Spec(spec);
            let from_bytes = replay(&bytes, &target).expect("byte path");
            let from_decoded = replay_decoded(&trace, &target).expect("decoded path");
            assert_eq!(from_bytes, from_decoded, "seed {seed}");
        }
    }
}

#[test]
fn farm_sweep_is_deterministic_and_reproduces_live_stats() {
    let (special, special_live) =
        capture(&SpecialConv::default(), ConvProblem::special(66, 8, 3), 11);
    let (general, general_live) = capture(
        &GeneralConv::table1(3),
        ConvProblem::general(34, 4, 64, 3),
        13,
    );
    let traces = vec![
        Trace::decode(&special).expect("decodes"),
        Trace::decode(&general).expect("decodes"),
    ];

    // Replaying each capture under its own spec (the grid's anchor)
    // reproduces the live counters bit for bit.
    for (trace, live) in traces.iter().zip([&special_live, &general_live]) {
        let r = &replay_decoded(trace, &TargetSpec::Capture).expect("replays")[0];
        assert_eq!(&r.stats, live);
    }

    let specs = GpuSpec::kepler_k40m()
        .grid()
        .bank_widths(&[BankWidth::B4, BankWidth::B8])
        .line_sizes(&[64, 128])
        .ro_cache_bytes(&[24 * 1024, 48 * 1024])
        .build()
        .expect("grid");
    assert_eq!(specs.len(), 8);

    let baseline = sweep(&traces, &specs, Parallelism::Serial);
    assert_eq!(baseline.len(), traces.len() * specs.len());

    // Shuffled cell order + any thread count must not change a bit.
    let mut cells: Vec<(usize, usize)> = (0..traces.len())
        .flat_map(|t| (0..specs.len()).map(move |s| (t, s)))
        .collect();
    cells.reverse();
    cells.swap(3, 9);
    for threads in [2, 5] {
        let got = sweep_cells(&traces, &specs, &cells, Parallelism::Threads(threads));
        assert_eq!(got.len(), baseline.len());
        for (g, b) in got.iter().zip(&baseline) {
            assert_eq!((g.trace, g.spec, g.launch), (b.trace, b.spec, b.launch));
            assert_eq!(g.report.as_ref().unwrap(), b.report.as_ref().unwrap());
        }
    }
}
